#include "fleet/coordinator.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <utility>

#include "common/bytes.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "server/artifact_stream.h"

namespace automc {
namespace fleet {

namespace {

namespace fs = std::filesystem;

using server::Frame;
using server::JobInfo;
using server::MsgType;

// One bounded retry window across a worker respawn. Long enough for the
// monitor to notice the death (50ms poll) and the replacement to finish
// JobManager recovery; short enough that a permanently failing exec
// surfaces as an error instead of a hang.
constexpr double kCallDeadlineSeconds = 10.0;

int WorkersFromEnv() {
  const char* env = std::getenv("AUTOMC_FLEET_WORKERS");
  if (env == nullptr || *env == '\0') return 2;
  int v = std::atoi(env);
  return v > 0 ? v : 2;
}

Frame ErrorFrame(const Status& status) {
  Frame f;
  f.type = static_cast<uint32_t>(MsgType::kError);
  f.payload = server::EncodeError(status);
  return f;
}

Frame ReplyFrame(MsgType type, std::string payload) {
  Frame f;
  f.type = static_cast<uint32_t>(type);
  f.payload = std::move(payload);
  return f;
}

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

}  // namespace

Result<std::unique_ptr<Coordinator>> Coordinator::Start(Options options) {
  if (options.workdir.empty()) {
    return Status::InvalidArgument("Coordinator needs a workdir");
  }
  int n = options.num_workers > 0 ? options.num_workers : WorkersFromEnv();
  if (n > 64) n = 64;

  std::unique_ptr<Coordinator> coord(new Coordinator());
  coord->options_ = options;
  coord->shared_dir_ = options.shared_dir.empty()
                           ? options.workdir + "/experience"
                           : options.shared_dir;
  coord->artifact_dir_ = options.artifact_dir;
  if (coord->artifact_dir_.empty()) {
    if (const char* env = std::getenv("AUTOMC_ARTIFACT_DIR");
        env != nullptr && *env != '\0') {
      coord->artifact_dir_ = env;
    } else {
      coord->artifact_dir_ = options.workdir + "/artifacts";
    }
  }
  coord->worker_exe_ =
      options.worker_exe.empty() ? "/proc/self/exe" : options.worker_exe;

  std::error_code ec;
  fs::create_directories(coord->shared_dir_, ec);
  if (ec) {
    return Status::Internal("cannot create " + coord->shared_dir_ + ": " +
                            ec.message());
  }
  // The coordinator serves fetches from the shared registry itself —
  // worker publishes land here durably, so FetchModel works even while
  // the publishing worker is down (or was SIGKILLed and is respawning).
  artifact::Registry::Options reg_opts;
  reg_opts.dir = coord->artifact_dir_;
  if (Result<std::unique_ptr<artifact::Registry>> reg =
          artifact::Registry::Open(reg_opts);
      reg.ok()) {
    coord->registry_ = std::move(*reg);
  } else {
    AUTOMC_LOG(Warning) << "fleet artifact registry unavailable: "
                        << reg.status().ToString();
  }

  for (int i = 0; i < n; ++i) {
    coord->slots_.push_back(std::make_unique<Slot>());
  }
  for (size_t i = 0; i < coord->slots_.size(); ++i) {
    std::unique_lock<std::mutex> lock(coord->slots_[i]->mu);
    AUTOMC_RETURN_IF_ERROR(coord->Spawn(i));
  }
  coord->monitor_ = std::thread([c = coord.get()] { c->MonitorLoop(); });

  // Recover the global id counter: ids live in the workers' durable job
  // dirs, so the max over every worker's job list is the high-water mark.
  uint64_t max_id = 0;
  for (size_t i = 0; i < coord->slots_.size(); ++i) {
    Result<Frame> reply = coord->Call(i, MsgType::kListJobs, "");
    if (!reply.ok()) return reply.status();
    if (reply->type != static_cast<uint32_t>(MsgType::kJobList)) {
      return Status::Internal("worker " + std::to_string(i + 1) +
                              " failed to list jobs during recovery");
    }
    ByteReader r(reply->payload);
    uint32_t count = 0;
    if (!r.U32(&count)) {
      return Status::Internal("malformed job list from worker " +
                              std::to_string(i + 1));
    }
    for (uint32_t j = 0; j < count; ++j) {
      JobInfo info;
      if (!server::DecodeJobInfo(&r, &info)) {
        return Status::Internal("malformed job list from worker " +
                                std::to_string(i + 1));
      }
      if (info.id > max_id) max_id = info.id;
    }
  }
  coord->next_id_ = max_id + 1;
  return coord;
}

Coordinator::~Coordinator() { Shutdown(); }

Status Coordinator::Spawn(size_t slot) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    return Errno("socketpair");
  }
  // Our end must not leak into any child; the worker's end must survive
  // the exec (it is the worker's --control-fd).
  ::fcntl(sv[0], F_SETFD, FD_CLOEXEC);

  const std::string worker_dir =
      options_.workdir + "/worker-" + std::to_string(slot + 1);
  // Everything the child needs is built BEFORE fork: between fork and
  // exec only async-signal-safe calls are allowed in a multithreaded
  // parent (no malloc).
  const std::string control_arg = "--control-fd=" + std::to_string(sv[1]);
  const std::string workdir_arg = "--workdir=" + worker_dir;
  const std::string exp_arg = "--experience=" + shared_dir_;
  const std::string seg_arg =
      "--segment=seg-" + std::to_string(slot + 1) + ".bin";
  const std::string art_arg = "--artifacts=" + artifact_dir_;
  const char* argv[] = {worker_exe_.c_str(), "--worker", control_arg.c_str(),
                        workdir_arg.c_str(), exp_arg.c_str(), seg_arg.c_str(),
                        art_arg.c_str(), nullptr};

  pid_t pid = ::fork();
  if (pid == 0) {
    ::execv(worker_exe_.c_str(), const_cast<char* const*>(argv));
    _exit(127);  // exec failed; the monitor sees the exit and retries
  }
  ::close(sv[1]);
  if (pid < 0) {
    ::close(sv[0]);
    return Errno("fork");
  }
  slots_[slot]->pid = pid;
  slots_[slot]->fd = sv[0];
  AUTOMC_METRIC_COUNT("fleet.workers_spawned");
  return Status::OK();
}

void Coordinator::MonitorLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    for (;;) {
      int wstatus = 0;
      pid_t pid = ::waitpid(-1, &wstatus, WNOHANG);
      if (pid <= 0) break;
      for (size_t i = 0; i < slots_.size(); ++i) {
        Slot* slot = slots_[i].get();
        std::unique_lock<std::mutex> lock(slot->mu);
        if (slot->pid != pid) continue;
        AUTOMC_LOG(Warning) << "fleet worker " << (i + 1) << " (pid " << pid
                            << ") died; respawning";
        AUTOMC_METRIC_COUNT("fleet.worker_deaths");
        if (slot->fd >= 0) ::close(slot->fd);
        slot->fd = -1;
        slot->pid = -1;
        if (!stopping_.load(std::memory_order_acquire)) {
          // The respawned worker's JobManager recovery re-queues its
          // non-terminal jobs in id order — deterministic re-queue.
          if (automc::Status st = Spawn(i); !st.ok()) {
            AUTOMC_LOG(Error) << "fleet worker " << (i + 1)
                              << " respawn failed: " << st.ToString();
          }
        }
        break;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

Result<Frame> Coordinator::Call(size_t slot_idx, MsgType type,
                                std::string_view payload) {
  Slot* slot = slots_[slot_idx].get();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(kCallDeadlineSeconds);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(slot->mu);
      if (slot->fd >= 0) {
        automc::Status wst = server::WriteFrame(slot->fd, type, payload);
        if (wst.ok()) {
          Result<Frame> reply = server::ReadFrame(slot->fd);
          if (reply.ok()) return reply;
        }
        // Transport broke mid-call (worker died). Drop the channel; the
        // monitor respawns the worker and the loop retries. All control
        // messages are safe to retry: reads are idempotent and
        // submission uses kSubmitWithId.
        ::close(slot->fd);
        slot->fd = -1;
      }
    }
    if (stopping_.load(std::memory_order_acquire) ||
        std::chrono::steady_clock::now() >= deadline) {
      return Status::FailedPrecondition(
          "fleet worker " + std::to_string(slot_idx + 1) + " unavailable");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

Frame Coordinator::Handle(const Frame& request) {
  switch (static_cast<MsgType>(request.type)) {
    case MsgType::kSubmitJob: {
      // Sanity-decode before burning an id; semantic validation happens
      // in the worker (the same ValidateRunSpec a direct run hits).
      core::RunSpec spec;
      ByteReader r(request.payload);
      if (!core::DecodeRunSpec(&r, &spec) || !r.Done()) {
        return ErrorFrame(Status::InvalidArgument("malformed RunSpec payload"));
      }
      uint64_t id = 0;
      {
        std::unique_lock<std::mutex> lock(id_mu_);
        id = next_id_++;
      }
      ByteWriter w;
      w.U64(id);
      w.Raw(request.payload.data(), request.payload.size());
      Result<Frame> reply =
          Call(SlotOf(id), MsgType::kSubmitWithId, w.str());
      if (!reply.ok()) return ErrorFrame(reply.status());
      if (reply->type == static_cast<uint32_t>(MsgType::kSubmitted)) {
        AUTOMC_METRIC_COUNT("fleet.jobs_sharded");
      }
      return *std::move(reply);
    }
    case MsgType::kJobStatus:
    case MsgType::kCancelJob:
    case MsgType::kFetchOutcome: {
      ByteReader r(request.payload);
      uint64_t id = 0;
      if (!r.U64(&id) || !r.Done() || id == 0) {
        return ErrorFrame(Status::InvalidArgument("malformed job-id payload"));
      }
      Result<Frame> reply = Call(
          SlotOf(id), static_cast<MsgType>(request.type), request.payload);
      if (!reply.ok()) return ErrorFrame(reply.status());
      return *std::move(reply);
    }
    case MsgType::kListJobs: {
      // Fan out and merge by id — the client sees one job namespace.
      std::map<uint64_t, JobInfo> merged;
      for (size_t i = 0; i < slots_.size(); ++i) {
        Result<Frame> reply = Call(i, MsgType::kListJobs, "");
        if (!reply.ok()) return ErrorFrame(reply.status());
        if (reply->type != static_cast<uint32_t>(MsgType::kJobList)) {
          return *std::move(reply);  // propagate the worker's error
        }
        ByteReader r(reply->payload);
        uint32_t count = 0;
        if (!r.U32(&count)) {
          return ErrorFrame(Status::Internal("malformed job list from worker " +
                                             std::to_string(i + 1)));
        }
        for (uint32_t j = 0; j < count; ++j) {
          JobInfo info;
          if (!server::DecodeJobInfo(&r, &info)) {
            return ErrorFrame(Status::Internal(
                "malformed job list from worker " + std::to_string(i + 1)));
          }
          merged.emplace(info.id, std::move(info));
        }
      }
      ByteWriter w;
      w.U32(static_cast<uint32_t>(merged.size()));
      for (const auto& [id, info] : merged) server::EncodeJobInfo(info, &w);
      return ReplyFrame(MsgType::kJobList, w.Take());
    }
    case MsgType::kGetMetrics: {
      if (request.payload.empty()) {
        return ReplyFrame(MsgType::kMetrics,
                          metrics::MetricsRegistry::Global().ToJson());
      }
      ByteReader r(request.payload);
      uint32_t worker_id = 0;
      if (!r.U32(&worker_id) || !r.Done() || worker_id == 0 ||
          worker_id > slots_.size()) {
        return ErrorFrame(Status::InvalidArgument(
            "metrics payload must be empty or a worker id in [1, " +
            std::to_string(slots_.size()) + "]"));
      }
      Result<Frame> reply = Call(worker_id - 1, MsgType::kGetMetrics, "");
      if (!reply.ok()) return ErrorFrame(reply.status());
      return *std::move(reply);
    }
    case MsgType::kFetchModel:
      // Blocking-path fallback; the event loop intercepts via HandleStream.
      return server::FetchModelBlockingReply(registry_.get(), request);
    case MsgType::kListArtifacts:
      return server::ArtifactListReply(registry_.get());
    case MsgType::kSubmitWithId:
      return ErrorFrame(Status::InvalidArgument(
          "kSubmitWithId is internal: the coordinator assigns job ids"));
    default:
      return ErrorFrame(Status::InvalidArgument(
          "unknown request type " + std::to_string(request.type)));
  }
}

std::unique_ptr<ReplyStream> Coordinator::HandleStream(
    uint64_t client, const Frame& request) {
  (void)client;
  if (static_cast<MsgType>(request.type) != MsgType::kFetchModel) {
    return nullptr;
  }
  ByteReader r(request.payload);
  std::string name;
  if (!r.Str(&name) || !r.Done()) return nullptr;  // Handle() answers kError
  return server::MakeModelStream(registry_.get(), std::move(name));
}

pid_t Coordinator::worker_pid(int worker_id) const {
  if (worker_id < 1 || worker_id > static_cast<int>(slots_.size())) return -1;
  Slot* slot = slots_[static_cast<size_t>(worker_id - 1)].get();
  std::unique_lock<std::mutex> lock(slot->mu);
  return slot->pid;
}

void Coordinator::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    stopping_.store(true, std::memory_order_release);
    if (monitor_.joinable()) monitor_.join();

    // Closing the control channel is the shutdown signal: workers drain
    // (running jobs checkpoint + re-queue durably) and exit 0.
    for (auto& slot : slots_) {
      std::unique_lock<std::mutex> lock(slot->mu);
      if (slot->fd >= 0) ::close(slot->fd);
      slot->fd = -1;
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(15);
    for (auto& slot : slots_) {
      pid_t pid;
      {
        std::unique_lock<std::mutex> lock(slot->mu);
        pid = slot->pid;
      }
      if (pid <= 0) continue;
      for (;;) {
        int wstatus = 0;
        pid_t got = ::waitpid(pid, &wstatus, WNOHANG);
        if (got == pid || (got < 0 && errno == ECHILD)) break;
        if (std::chrono::steady_clock::now() >= deadline) {
          // A stuck worker loses nothing durable: its jobs re-queue on
          // the next recovery exactly as after a power cut.
          ::kill(pid, SIGKILL);
          ::waitpid(pid, &wstatus, 0);
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      std::unique_lock<std::mutex> lock(slot->mu);
      slot->pid = -1;
    }
  });
}

}  // namespace fleet
}  // namespace automc
