#ifndef AUTOMC_FLEET_EVENT_LOOP_H_
#define AUTOMC_FLEET_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/net.h"
#include "common/result.h"
#include "server/protocol.h"

namespace automc {
namespace fleet {

// A pull-model multi-frame reply (FetchModel's chunked model stream). The
// transport calls Next() for one frame at a time, only while the
// connection's write backlog is under the high watermark — so a stream of
// any total size costs at most ~watermark + one frame of buffered memory,
// and a slow reader throttles the producer instead of ballooning the
// output buffer toward the drop limit. Returning false ends the stream;
// to fail mid-stream, emit one kError frame and then return false.
class ReplyStream {
 public:
  virtual ~ReplyStream() = default;
  virtual bool Next(server::Frame* out) = 0;
};

// A decoded request frame in, a reply frame out. Handle() runs on the
// event-loop thread, so implementations must not block on long work —
// the JobManager-backed handler only enqueues/inspects (job execution has
// its own threads), and the coordinator handler does one bounded
// round-trip to a worker.
class RequestHandler {
 public:
  virtual ~RequestHandler() = default;
  virtual server::Frame Handle(const server::Frame& request) = 0;
  // Transport-aware overload: `client` identifies the submitting connection
  // (a monotonic serial, never a recycled fd). The event loop calls this
  // form so handlers can keep per-client state — the JobManager uses it as
  // the fairness key for round-robin job scheduling. Default: client-blind.
  virtual server::Frame Handle(uint64_t client, const server::Frame& request) {
    (void)client;
    return Handle(request);
  }
  // Streaming requests: return a ReplyStream whose Next() yields every
  // reply frame (head included), or nullptr — the default — to mean "not a
  // streaming request; call Handle() instead". While a stream is active the
  // connection serves it to completion before decoding further requests,
  // so replies stay in request order even when a fetch is pipelined
  // between control calls.
  virtual std::unique_ptr<ReplyStream> HandleStream(
      uint64_t client, const server::Frame& request) {
    (void)client;
    (void)request;
    return nullptr;
  }
};

// Single-threaded epoll reactor speaking AMCS framing over any mix of
// listening sockets (unix + TCP). Replaces thread-per-connection reads:
// thousands of idle connections cost one epoll registration each, no
// threads. Handles the nonblocking-transport edge cases the blocking
// server never saw:
//
//   * partial frames  — an incremental FrameDecoder per connection; a
//     request dribbled one byte at a time is reassembled, and EOF inside a
//     frame counts as a bad frame rather than a clean close;
//   * slow writers    — replies queue in a per-connection output buffer
//     flushed under EPOLLOUT; a peer that stops reading stalls only its
//     own buffer (capped at kMaxOutputBuffer, then the connection drops);
//   * protocol errors — bad magic / CRC mismatch / payload over the cap
//     get a typed kError frame (best effort) before the connection closes;
//   * idle timeout    — connections quiet for longer than
//     `idle_timeout_s` are reaped (slow-loris / half-open peers), swept at
//     ~1s granularity.
class EventLoop {
 public:
  struct Options {
    // Listening sockets, already bound; the loop takes ownership and
    // closes them on shutdown.
    std::vector<int> listen_fds;
    // Seconds of inactivity before a connection is reaped; 0 disables.
    int idle_timeout_s = 0;
    // Not owned; must outlive the loop.
    RequestHandler* handler = nullptr;
  };

  static Result<std::unique_ptr<EventLoop>> Start(Options options);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Async-signal-safe stop request (one eventfd write).
  void RequestStop();
  // Blocks until a stop is requested, then flushes pending replies
  // (bounded) and closes every connection.
  void Wait();
  // RequestStop() + Wait().
  void Stop();

  // Flow-control contract, public so tests and capacity docs can pin it.
  // A reply backlog larger than kMaxOutputBuffer means the peer stopped
  // reading; drop the connection instead of buffering without bound.
  static constexpr size_t kMaxOutputBuffer = 256u << 20;
  // Write backpressure: a connection whose reply backlog crosses the high
  // watermark stops being *read* (EPOLLIN disarmed, frames already decoded
  // stay parked) and any active chunked stream stops being pumped, until
  // the backlog drains under the low watermark — so a peer that pipelines
  // requests without reading replies (or reads a model stream slowly) caps
  // its own memory at ~4 MiB instead of marching toward the 256 MiB drop
  // limit. server.backpressure_* metrics count stalls/resumes/drops and
  // track the buffered-byte total and peak.
  static constexpr size_t kOutbufHighWatermark = 4u << 20;
  static constexpr size_t kOutbufLowWatermark = 1u << 20;

 private:

  struct Conn {
    int fd = -1;
    uint64_t serial = 0;  // stable client id (fds get recycled)
    server::FrameDecoder decoder;
    std::string outbuf;
    size_t outpos = 0;
    std::chrono::steady_clock::time_point last_active;
    bool closing = false;  // close as soon as outbuf drains
    bool paused = false;   // reading stopped until the backlog drains
    // Active multi-frame reply; while set, decoded requests stay parked.
    std::unique_ptr<ReplyStream> stream;
  };

  EventLoop() = default;

  void Run();
  void AcceptAll(int listen_fd);
  void HandleConn(Conn* conn, uint32_t events);
  // Serves every frame the decoder has buffered, pausing at the output
  // high watermark. Returns false if the connection was closed.
  bool ServeDecoded(Conn* conn);
  // Pulls frames off the connection's active ReplyStream until it ends or
  // the backlog crosses the high watermark (stream kept for later).
  void PumpStream(Conn* conn);
  void QueueReply(Conn* conn, server::MsgType type, std::string_view payload);
  // Writes as much of outbuf as the socket accepts; re-arms EPOLLOUT when
  // bytes remain and resumes a paused connection once the backlog drains
  // under the low watermark. Returns false if the connection was closed.
  bool Flush(Conn* conn);
  void CloseConn(int fd);
  void SweepIdle();
  size_t Backlog(const Conn& conn) const {
    return conn.outbuf.size() - conn.outpos;
  }
  void AccountBuffered(ssize_t delta);

  Options options_;
  net::Epoll epoll_;
  int wake_fd_ = -1;  // eventfd; written by RequestStop
  std::atomic<bool> stop_requested_{false};
  std::thread loop_thread_;
  std::map<int, std::unique_ptr<Conn>> conns_;
  uint64_t next_conn_serial_ = 1;
  size_t total_buffered_ = 0;  // reply bytes queued across all connections
  size_t peak_buffered_ = 0;
};

}  // namespace fleet
}  // namespace automc

#endif  // AUTOMC_FLEET_EVENT_LOOP_H_
