#include "fleet/worker.h"

#include <signal.h>
#include <unistd.h>

#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "server/protocol.h"
#include "server/server.h"

namespace automc {
namespace fleet {

int WorkerMain(int control_fd, server::JobManager::Options jobs) {
  // The coordinator owns this process's lifecycle through the control
  // channel; a ^C in the terminal must reach only the coordinator.
  ::signal(SIGINT, SIG_IGN);
  ::signal(SIGTERM, SIG_IGN);
  ::signal(SIGPIPE, SIG_IGN);

  Result<std::unique_ptr<server::JobManager>> mgr =
      server::JobManager::Open(std::move(jobs));
  if (!mgr.ok()) {
    AUTOMC_LOG(Error) << "worker: cannot open job manager: "
                      << mgr.status().ToString();
    return 1;
  }
  server::JobRequestHandler handler(mgr->get());

  for (;;) {
    Result<server::Frame> frame = server::ReadFrame(control_fd);
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kNotFound) {
        // Clean EOF: the coordinator closed the channel. Drain — running
        // jobs checkpoint and re-queue durably for the next process.
        (*mgr)->Shutdown(/*drain=*/true);
        metrics::MetricsRegistry::Global().DumpIfConfigured();
        return 0;
      }
      AUTOMC_LOG(Error) << "worker: control channel broken: "
                        << frame.status().ToString();
      (*mgr)->Shutdown(/*drain=*/true);
      return 1;
    }
    server::Frame reply = handler.Handle(*frame);
    if (automc::Status st =
            server::WriteFrame(control_fd,
                               static_cast<server::MsgType>(reply.type),
                               reply.payload);
        !st.ok()) {
      AUTOMC_LOG(Error) << "worker: control channel write failed: "
                        << st.ToString();
      (*mgr)->Shutdown(/*drain=*/true);
      return 1;
    }
  }
}

}  // namespace fleet
}  // namespace automc
