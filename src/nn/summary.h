#ifndef AUTOMC_NN_SUMMARY_H_
#define AUTOMC_NN_SUMMARY_H_

#include <string>
#include <vector>

#include "nn/model.h"

namespace automc {
namespace nn {

// One row of a model summary: a leaf layer with its contribution to the
// model's size and compute.
struct LayerSummary {
  std::string path;   // e.g. "net.3.conv1" (index path through containers)
  std::string type;   // layer Name()
  std::string shape;  // weight shape, "-" for stateless layers
  int64_t params = 0;
  int64_t flops = 0;  // MACs of the profiling forward pass
};

struct ModelSummary {
  std::vector<LayerSummary> layers;
  int64_t total_params = 0;
  int64_t total_flops = 0;
  int weight_bits = 32;

  // Formatted table (fixed-width columns) for logs and CLI output.
  std::string ToString() const;
};

// Profiles `model` with one inference-mode forward pass on a zero image of
// its spec size and collects the per-layer breakdown.
ModelSummary Summarize(Model* model);

}  // namespace nn
}  // namespace automc

#endif  // AUTOMC_NN_SUMMARY_H_
