#ifndef AUTOMC_NN_LAYER_H_
#define AUTOMC_NN_LAYER_H_

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace automc {
namespace nn {

// A trainable parameter: value plus accumulated gradient of the same shape.
struct Param {
  tensor::Tensor value;
  tensor::Tensor grad;

  explicit Param(tensor::Tensor v)
      : value(std::move(v)), grad(tensor::Tensor::Zeros(value.shape())) {}
  Param() = default;

  void ZeroGrad() { grad.Fill(0.0f); }
};

// Base class for all network layers. Layers own their parameters and cache
// whatever they need during Forward to run Backward; a Backward call must be
// preceded by a Forward call with training semantics on the same instance.
//
// This explicit layer-graph design (rather than tape autograd) is deliberate:
// structured compression performs surgery on concrete layer objects
// (removing channels, swapping a Conv2d for a low-rank composite), which
// requires stable, inspectable layer identities. See DESIGN.md.
class Layer {
 public:
  virtual ~Layer() = default;

  // Computes the layer output. `training` selects batch-vs-running
  // statistics in BatchNorm and enables gradient caches.
  virtual tensor::Tensor Forward(const tensor::Tensor& x, bool training) = 0;

  // Propagates `grad_out` (dLoss/dOutput) to dLoss/dInput, accumulating
  // parameter gradients into Param::grad.
  virtual tensor::Tensor Backward(const tensor::Tensor& grad_out) = 0;

  // Trainable parameters (empty for stateless layers).
  virtual std::vector<Param*> Params() { return {}; }

  // Deep copy, including parameter values (not gradients or caches).
  virtual std::unique_ptr<Layer> Clone() const = 0;

  // Short type name for debugging/scheme printing, e.g. "Conv2d".
  virtual std::string Name() const = 0;

  // Multiply-accumulate count of the most recent Forward (0 before any
  // forward or for layers with no arithmetic). Used for the FLOPs metric.
  virtual int64_t FlopsLastForward() const { return 0; }

  int64_t ParamCount() {
    int64_t n = 0;
    for (Param* p : Params()) n += p->value.numel();
    return n;
  }
};

}  // namespace nn
}  // namespace automc

#endif  // AUTOMC_NN_LAYER_H_
