#ifndef AUTOMC_NN_MODEL_H_
#define AUTOMC_NN_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "nn/layers.h"
#include "nn/residual.h"

namespace automc {
namespace nn {

// Static description of a network instance: family/depth identify the
// architecture, the rest fixes the input domain. base_width scales every
// stage width (the scaled substrate uses 8 where the paper uses 16/64; see
// DESIGN.md).
struct ModelSpec {
  std::string family;   // "resnet" | "vgg" | "custom"
  int depth = 0;        // 20/56/164 or 13/16/19
  int num_classes = 10;
  int base_width = 8;
  int in_channels = 3;
  int image_size = 8;   // square input
};

// A trainable network: a Sequential root plus its spec. Owns every layer;
// deep-copyable via Clone so the search can snapshot compressed models.
class Model {
 public:
  Model(ModelSpec spec, std::unique_ptr<Sequential> net)
      : spec_(std::move(spec)), net_(std::move(net)) {}

  const ModelSpec& spec() const { return spec_; }
  Sequential* net() { return net_.get(); }

  tensor::Tensor Forward(const tensor::Tensor& x, bool training) {
    return net_->Forward(x, training);
  }
  tensor::Tensor Backward(const tensor::Tensor& grad_logits) {
    return net_->Backward(grad_logits);
  }

  std::vector<Param*> Params() { return net_->Params(); }
  void ZeroGrad() {
    for (Param* p : Params()) p->ZeroGrad();
  }

  int64_t ParamCount() {
    int64_t n = 0;
    for (Param* p : Params()) n += p->value.numel();
    return n;
  }

  // Bits used to store each weight (32 until a quantization strategy runs).
  int weight_bits() const { return weight_bits_; }
  void set_weight_bits(int bits) {
    AUTOMC_CHECK(bits >= 1 && bits <= 32);
    weight_bits_ = bits;
  }

  // Parameter count scaled by storage precision: the quantity the PR
  // objective measures, so quantization trades off against pruning in the
  // same currency (float32-equivalent parameters).
  int64_t EffectiveParamCount() {
    return (ParamCount() * weight_bits_ + 31) / 32;
  }

  // Multiply-accumulate count for a single input sample, measured by running
  // an inference-mode forward pass on a zero image.
  int64_t FlopsPerSample();

  std::unique_ptr<Model> Clone() const {
    auto net_copy = std::unique_ptr<Sequential>(
        static_cast<Sequential*>(net_->Clone().release()));
    auto copy = std::make_unique<Model>(spec_, std::move(net_copy));
    copy->weight_bits_ = weight_bits_;
    return copy;
  }

 private:
  ModelSpec spec_;
  std::unique_ptr<Sequential> net_;
  int weight_bits_ = 32;
};

// CIFAR-style ResNet. Supported depths: 6n+2 with basic blocks (20, 56, ...)
// and 9n+2 with bottleneck blocks when `bottleneck` (164, ...). Three stages
// with widths base_width, 2*base_width, 4*base_width and strides 1, 2, 2.
Result<std::unique_ptr<Model>> BuildResNet(const ModelSpec& spec, Rng* rng);

// VGG-13/16/19 conv stacks (widths scaled by base_width/64), BN after every
// conv, pooling applied only while the spatial size permits, global average
// pool + single linear classifier.
Result<std::unique_ptr<Model>> BuildVgg(const ModelSpec& spec, Rng* rng);

// Dispatches on spec.family.
Result<std::unique_ptr<Model>> BuildModel(const ModelSpec& spec, Rng* rng);

}  // namespace nn
}  // namespace automc

#endif  // AUTOMC_NN_MODEL_H_
