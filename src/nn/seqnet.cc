#include "nn/seqnet.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"

namespace automc {
namespace nn {

using tensor::Tensor;

namespace {

float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

// y = W x (+accumulate into y), W is [out, in], x is [in]. Rows are
// independent dot products, so large layers (the RL controller's action head
// scores every strategy at once) split across the pool; the grain depends
// only on the shape, and tiny GRU/MLP layers stay single-chunk (serial).
void MatVec(const Tensor& w, const Tensor& x, Tensor* y) {
  int64_t out = w.size(0), in = w.size(1);
  AUTOMC_CHECK_EQ(x.numel(), in);
  AUTOMC_CHECK_EQ(y->numel(), out);
  const float* wd = w.data();
  const float* xd = x.data();
  float* yd = y->MutableData();
  int64_t grain = std::max<int64_t>(1, (1 << 14) / std::max<int64_t>(1, in));
  automc::ParallelFor(out, grain, [=](int64_t o0, int64_t o1) {
    for (int64_t o = o0; o < o1; ++o) {
      const float* row = wd + o * in;
      double s = 0.0;
      for (int64_t i = 0; i < in; ++i) {
        s += static_cast<double>(row[i]) * xd[i];
      }
      yd[o] += static_cast<float>(s);
    }
  });
}

// dx += W^T dy.
void MatVecTranspose(const Tensor& w, const Tensor& dy, Tensor* dx) {
  int64_t out = w.size(0), in = w.size(1);
  AUTOMC_CHECK_EQ(dy.numel(), out);
  AUTOMC_CHECK_EQ(dx->numel(), in);
  for (int64_t o = 0; o < out; ++o) {
    const float* row = w.data() + o * in;
    float g = dy[o];
    if (g == 0.0f) continue;
    for (int64_t i = 0; i < in; ++i) (*dx)[i] += g * row[i];
  }
}

// dW += dy x^T (outer product).
void OuterAccumulate(const Tensor& dy, const Tensor& x, Tensor* dw) {
  int64_t out = dy.numel(), in = x.numel();
  AUTOMC_CHECK_EQ(dw->size(0), out);
  AUTOMC_CHECK_EQ(dw->size(1), in);
  for (int64_t o = 0; o < out; ++o) {
    float g = dy[o];
    if (g == 0.0f) continue;
    float* row = dw->MutableData() + o * in;
    for (int64_t i = 0; i < in; ++i) row[i] += g * x[i];
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// GruCell

GruCell::GruCell(int64_t input_dim, int64_t hidden_dim, Rng* rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      wz_(Tensor::KaimingNormal({hidden_dim, input_dim}, input_dim, rng)),
      uz_(Tensor::KaimingNormal({hidden_dim, hidden_dim}, hidden_dim, rng)),
      bz_(Tensor::Zeros({hidden_dim})),
      wr_(Tensor::KaimingNormal({hidden_dim, input_dim}, input_dim, rng)),
      ur_(Tensor::KaimingNormal({hidden_dim, hidden_dim}, hidden_dim, rng)),
      br_(Tensor::Zeros({hidden_dim})),
      wn_(Tensor::KaimingNormal({hidden_dim, input_dim}, input_dim, rng)),
      un_(Tensor::KaimingNormal({hidden_dim, hidden_dim}, hidden_dim, rng)),
      bn_(Tensor::Zeros({hidden_dim})) {
  AUTOMC_CHECK_GT(input_dim, 0);
  AUTOMC_CHECK_GT(hidden_dim, 0);
}

std::vector<Param*> GruCell::Params() {
  return {&wz_, &uz_, &bz_, &wr_, &ur_, &br_, &wn_, &un_, &bn_};
}

Tensor GruCell::Step(const Tensor& x, const Tensor& h_prev,
                     Cache* cache) const {
  AUTOMC_CHECK_EQ(x.numel(), input_dim_);
  AUTOMC_CHECK_EQ(h_prev.numel(), hidden_dim_);

  Tensor z = bz_.value;
  MatVec(wz_.value, x, &z);
  MatVec(uz_.value, h_prev, &z);
  for (int64_t i = 0; i < hidden_dim_; ++i) z[i] = Sigmoid(z[i]);

  Tensor r = br_.value;
  MatVec(wr_.value, x, &r);
  MatVec(ur_.value, h_prev, &r);
  for (int64_t i = 0; i < hidden_dim_; ++i) r[i] = Sigmoid(r[i]);

  Tensor rh({hidden_dim_});
  for (int64_t i = 0; i < hidden_dim_; ++i) rh[i] = r[i] * h_prev[i];

  Tensor n = bn_.value;
  MatVec(wn_.value, x, &n);
  MatVec(un_.value, rh, &n);
  for (int64_t i = 0; i < hidden_dim_; ++i) n[i] = std::tanh(n[i]);

  Tensor h({hidden_dim_});
  for (int64_t i = 0; i < hidden_dim_; ++i) {
    h[i] = (1.0f - z[i]) * n[i] + z[i] * h_prev[i];
  }

  if (cache != nullptr) {
    cache->x = x;
    cache->h_prev = h_prev;
    cache->z = z;
    cache->r = r;
    cache->n = n;
  }
  return h;
}

std::pair<Tensor, Tensor> GruCell::BackwardStep(const Cache& cache,
                                                const Tensor& dh) {
  const Tensor& x = cache.x;
  const Tensor& h_prev = cache.h_prev;
  const Tensor& z = cache.z;
  const Tensor& r = cache.r;
  const Tensor& n = cache.n;

  Tensor dx({input_dim_});
  Tensor dh_prev({hidden_dim_});

  Tensor dn({hidden_dim_}), dz({hidden_dim_});
  for (int64_t i = 0; i < hidden_dim_; ++i) {
    dn[i] = dh[i] * (1.0f - z[i]);
    dz[i] = dh[i] * (h_prev[i] - n[i]);
    dh_prev[i] += dh[i] * z[i];
  }

  // n = tanh(an), an = Wn x + Un (r*h_prev) + bn
  Tensor dan({hidden_dim_});
  for (int64_t i = 0; i < hidden_dim_; ++i) dan[i] = dn[i] * (1.0f - n[i] * n[i]);
  Tensor rh({hidden_dim_});
  for (int64_t i = 0; i < hidden_dim_; ++i) rh[i] = r[i] * h_prev[i];
  OuterAccumulate(dan, x, &wn_.grad);
  OuterAccumulate(dan, rh, &un_.grad);
  bn_.grad.AddInPlace(dan);
  MatVecTranspose(wn_.value, dan, &dx);
  Tensor drh({hidden_dim_});
  MatVecTranspose(un_.value, dan, &drh);
  Tensor dr({hidden_dim_});
  for (int64_t i = 0; i < hidden_dim_; ++i) {
    dr[i] = drh[i] * h_prev[i];
    dh_prev[i] += drh[i] * r[i];
  }

  // z = sigmoid(az), az = Wz x + Uz h_prev + bz
  Tensor daz({hidden_dim_});
  for (int64_t i = 0; i < hidden_dim_; ++i) daz[i] = dz[i] * z[i] * (1.0f - z[i]);
  OuterAccumulate(daz, x, &wz_.grad);
  OuterAccumulate(daz, h_prev, &uz_.grad);
  bz_.grad.AddInPlace(daz);
  MatVecTranspose(wz_.value, daz, &dx);
  MatVecTranspose(uz_.value, daz, &dh_prev);

  // r = sigmoid(ar), ar = Wr x + Ur h_prev + br
  Tensor dar({hidden_dim_});
  for (int64_t i = 0; i < hidden_dim_; ++i) dar[i] = dr[i] * r[i] * (1.0f - r[i]);
  OuterAccumulate(dar, x, &wr_.grad);
  OuterAccumulate(dar, h_prev, &ur_.grad);
  br_.grad.AddInPlace(dar);
  MatVecTranspose(wr_.value, dar, &dx);
  MatVecTranspose(ur_.value, dar, &dh_prev);

  return {std::move(dx), std::move(dh_prev)};
}

// ---------------------------------------------------------------------------
// VecMlp

VecMlp::VecMlp(std::vector<int64_t> dims, Rng* rng) : dims_(std::move(dims)) {
  AUTOMC_CHECK_GE(dims_.size(), 2u);
  for (size_t i = 0; i + 1 < dims_.size(); ++i) {
    weights_.emplace_back(
        Tensor::KaimingNormal({dims_[i + 1], dims_[i]}, dims_[i], rng));
    biases_.emplace_back(Tensor::Zeros({dims_[i + 1]}));
  }
}

std::vector<Param*> VecMlp::Params() {
  std::vector<Param*> out;
  for (size_t i = 0; i < weights_.size(); ++i) {
    out.push_back(&weights_[i]);
    out.push_back(&biases_[i]);
  }
  return out;
}

Tensor VecMlp::Forward(const Tensor& x, Cache* cache) const {
  AUTOMC_CHECK_EQ(x.numel(), dims_.front());
  if (cache != nullptr) {
    cache->inputs.clear();
    cache->pre.clear();
  }
  Tensor h = x;
  for (size_t l = 0; l < weights_.size(); ++l) {
    if (cache != nullptr) cache->inputs.push_back(h);
    Tensor y = biases_[l].value;
    MatVec(weights_[l].value, h, &y);
    if (cache != nullptr) cache->pre.push_back(y);
    if (l + 1 < weights_.size()) {
      for (int64_t i = 0; i < y.numel(); ++i) y[i] = std::max(0.0f, y[i]);
    }
    h = std::move(y);
  }
  return h;
}

Tensor VecMlp::Backward(const Cache& cache, const Tensor& dy) {
  AUTOMC_CHECK_EQ(cache.inputs.size(), weights_.size());
  Tensor g = dy;
  for (size_t l = weights_.size(); l-- > 0;) {
    if (l + 1 < weights_.size()) {
      // Undo ReLU of this layer's output.
      const Tensor& pre = cache.pre[l];
      for (int64_t i = 0; i < g.numel(); ++i) {
        if (pre[i] <= 0.0f) g[i] = 0.0f;
      }
    }
    OuterAccumulate(g, cache.inputs[l], &weights_[l].grad);
    biases_[l].grad.AddInPlace(g);
    Tensor dx({dims_[l]});
    MatVecTranspose(weights_[l].value, g, &dx);
    g = std::move(dx);
  }
  return g;
}

}  // namespace nn
}  // namespace automc
