#include "nn/optimizer.h"

#include <algorithm>
#include <cmath>

namespace automc {
namespace nn {

void Sgd::Step(const std::vector<Param*>& params) {
  for (Param* p : params) {
    auto it = velocity_.find(p);
    if (it == velocity_.end() || it->second.numel() != p->value.numel()) {
      it = velocity_.insert_or_assign(p, tensor::Tensor::Zeros(p->value.shape()))
               .first;
    }
    tensor::Tensor& vel = it->second;
    for (int64_t i = 0; i < p->value.numel(); ++i) {
      float g = p->grad[i] + weight_decay_ * p->value[i];
      // Elementwise clip keeps a single exploding batch from destroying the
      // run (compressed models can produce large transient gradients).
      g = std::clamp(g, -5.0f, 5.0f);
      vel[i] = momentum_ * vel[i] + g;
      p->value[i] -= lr_ * vel[i];
    }
  }
}

void Adam::Step(const std::vector<Param*>& params) {
  for (Param* p : params) {
    auto it = state_.find(p);
    if (it == state_.end() || it->second.m.numel() != p->value.numel()) {
      State s;
      s.m = tensor::Tensor::Zeros(p->value.shape());
      s.v = tensor::Tensor::Zeros(p->value.shape());
      it = state_.insert_or_assign(p, std::move(s)).first;
    }
    State& s = it->second;
    s.t += 1;
    float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(s.t));
    float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(s.t));
    for (int64_t i = 0; i < p->value.numel(); ++i) {
      float g = p->grad[i];
      s.m[i] = beta1_ * s.m[i] + (1.0f - beta1_) * g;
      s.v[i] = beta2_ * s.v[i] + (1.0f - beta2_) * g * g;
      float mhat = s.m[i] / bc1;
      float vhat = s.v[i] / bc2;
      p->value[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace nn
}  // namespace automc
