#include "nn/optimizer.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace automc {
namespace nn {

void Sgd::Step(const std::vector<Param*>& params) {
  for (Param* p : params) {
    auto it = velocity_.find(p);
    if (it == velocity_.end() || it->second.numel() != p->value.numel()) {
      it = velocity_.insert_or_assign(p, tensor::Tensor::Zeros(p->value.shape()))
               .first;
    }
    tensor::Tensor& vel = it->second;
    // Hoisted pointers: one COW materialization per tensor per step, not
    // one shared-buffer check per element.
    const int64_t n = p->value.numel();
    const float* gd = p->grad.data();
    float* vd = vel.MutableData();
    float* wd = p->value.MutableData();
    for (int64_t i = 0; i < n; ++i) {
      float g = gd[i] + weight_decay_ * wd[i];
      // Elementwise clip keeps a single exploding batch from destroying the
      // run (compressed models can produce large transient gradients).
      g = std::clamp(g, -5.0f, 5.0f);
      vd[i] = momentum_ * vd[i] + g;
      wd[i] -= lr_ * vd[i];
    }
  }
}

void Adam::Step(const std::vector<Param*>& params) {
  for (Param* p : params) {
    auto it = state_.find(p);
    if (it == state_.end() || it->second.m.numel() != p->value.numel()) {
      State s;
      s.m = tensor::Tensor::Zeros(p->value.shape());
      s.v = tensor::Tensor::Zeros(p->value.shape());
      it = state_.insert_or_assign(p, std::move(s)).first;
    }
    State& s = it->second;
    s.t += 1;
    float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(s.t));
    float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(s.t));
    const int64_t n = p->value.numel();
    const float* gd = p->grad.data();
    float* md = s.m.MutableData();
    float* vd = s.v.MutableData();
    float* wd = p->value.MutableData();
    for (int64_t i = 0; i < n; ++i) {
      float g = gd[i];
      md[i] = beta1_ * md[i] + (1.0f - beta1_) * g;
      vd[i] = beta2_ * vd[i] + (1.0f - beta2_) * g * g;
      float mhat = md[i] / bc1;
      float vhat = vd[i] / bc2;
      wd[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

void Adam::SaveState(const std::vector<Param*>& params, ByteWriter* w) const {
  w->U32(static_cast<uint32_t>(params.size()));
  for (const Param* p : params) {
    auto it = state_.find(const_cast<Param*>(p));
    if (it == state_.end() || it->second.m.numel() != p->value.numel()) {
      // No state yet: restore will leave the entry absent and Step() will
      // lazily create zeros, matching what a fresh optimizer would do.
      w->I64(-1);
      continue;
    }
    const State& s = it->second;
    w->I64(s.t);
    w->Floats(s.m.data(), static_cast<size_t>(s.m.numel()));
    w->Floats(s.v.data(), static_cast<size_t>(s.v.numel()));
  }
}

bool Adam::LoadState(const std::vector<Param*>& params, ByteReader* r) {
  uint32_t count = 0;
  if (!r->U32(&count) || count != params.size()) return false;
  std::unordered_map<Param*, State> restored;
  for (Param* p : params) {
    int64_t t = 0;
    if (!r->I64(&t)) return false;
    if (t < 0) continue;  // lazily initialized entry
    std::vector<float> m, v;
    if (!r->Floats(&m) || !r->Floats(&v)) return false;
    if (static_cast<int64_t>(m.size()) != p->value.numel() ||
        static_cast<int64_t>(v.size()) != p->value.numel()) {
      return false;
    }
    State s;
    s.t = t;
    // Fresh (unshared) buffers written in place: restoring state must not
    // register as COW traffic, and Zeros would alias the zero page only to
    // materialize on the next line.
    s.m = tensor::Tensor(p->value.shape());
    s.v = tensor::Tensor(p->value.shape());
    std::memcpy(s.m.MutableData(), m.data(), m.size() * sizeof(float));
    std::memcpy(s.v.MutableData(), v.data(), v.size() * sizeof(float));
    restored[p] = std::move(s);
  }
  state_ = std::move(restored);
  return true;
}

}  // namespace nn
}  // namespace automc
