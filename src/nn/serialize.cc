#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

#include "nn/layers.h"
#include "nn/lowrank.h"
#include "nn/residual.h"

namespace automc {
namespace nn {

namespace {

constexpr uint32_t kMagic = 0x4d434d41;  // "AMCM" little-endian
constexpr uint32_t kVersion = 1;

enum LayerTag : uint32_t {
  kTagConv2d = 1,
  kTagLinear = 2,
  kTagBatchNorm = 3,
  kTagReLU = 4,
  kTagLma = 5,
  kTagMaxPool = 6,
  kTagGlobalAvgPool = 7,
  kTagFlatten = 8,
  kTagSequential = 9,
  kTagResidualBlock = 10,
  kTagLowRankConv = 11,
  kTagAbsent = 0xffff,  // optional sub-layer not present
};

// ---- primitive writers / readers ------------------------------------------

void WriteU32(std::ostream* out, uint32_t v) {
  out->write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteI64(std::ostream* out, int64_t v) {
  out->write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteF32(std::ostream* out, float v) {
  out->write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteString(std::ostream* out, const std::string& s) {
  WriteU32(out, static_cast<uint32_t>(s.size()));
  out->write(s.data(), static_cast<std::streamsize>(s.size()));
}
void WriteTensor(std::ostream* out, const tensor::Tensor& t) {
  WriteU32(out, static_cast<uint32_t>(t.dim()));
  for (int64_t i = 0; i < t.dim(); ++i) WriteI64(out, t.size(i));
  if (t.numel() > 0) {
    out->write(reinterpret_cast<const char*>(t.data()),
               static_cast<std::streamsize>(t.numel() * sizeof(float)));
  }
}

Result<uint32_t> ReadU32(std::istream* in) {
  uint32_t v = 0;
  in->read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in->good()) return Status::OutOfRange("truncated stream (u32)");
  return v;
}
Result<int64_t> ReadI64(std::istream* in) {
  int64_t v = 0;
  in->read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in->good()) return Status::OutOfRange("truncated stream (i64)");
  return v;
}
Result<float> ReadF32(std::istream* in) {
  float v = 0;
  in->read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in->good()) return Status::OutOfRange("truncated stream (f32)");
  return v;
}
Result<std::string> ReadString(std::istream* in) {
  AUTOMC_ASSIGN_OR_RETURN(uint32_t n, ReadU32(in));
  if (n > (1u << 20)) return Status::InvalidArgument("implausible string size");
  std::string s(n, '\0');
  in->read(s.data(), n);
  if (!in->good()) return Status::OutOfRange("truncated stream (string)");
  return s;
}
Result<tensor::Tensor> ReadTensor(std::istream* in) {
  AUTOMC_ASSIGN_OR_RETURN(uint32_t dim, ReadU32(in));
  if (dim > 8) return Status::InvalidArgument("implausible tensor rank");
  std::vector<int64_t> shape;
  int64_t numel = 1;
  for (uint32_t i = 0; i < dim; ++i) {
    AUTOMC_ASSIGN_OR_RETURN(int64_t d, ReadI64(in));
    if (d < 0 || d > (1 << 24)) {
      return Status::InvalidArgument("implausible tensor dim");
    }
    shape.push_back(d);
    numel *= d;
  }
  tensor::Tensor t(shape);
  AUTOMC_CHECK_EQ(t.numel(), numel);
  if (numel > 0) {
    // The tensor was just allocated, so MutableData is a plain pointer
    // fetch — deserialization never materializes COW copies.
    in->read(reinterpret_cast<char*>(t.MutableData()),
             static_cast<std::streamsize>(numel * sizeof(float)));
    if (!in->good()) return Status::OutOfRange("truncated stream (tensor)");
  }
  return t;
}

// ---- layer tree ------------------------------------------------------------

Status WriteLayer(std::ostream* out, Layer* layer);

Status WriteOptional(std::ostream* out, Layer* layer) {
  if (layer == nullptr) {
    WriteU32(out, kTagAbsent);
    return Status::OK();
  }
  return WriteLayer(out, layer);
}

Status WriteLayer(std::ostream* out, Layer* layer) {
  if (auto* conv = dynamic_cast<Conv2d*>(layer)) {
    WriteU32(out, kTagConv2d);
    WriteI64(out, conv->in_channels());
    WriteI64(out, conv->out_channels());
    WriteI64(out, conv->kernel());
    WriteI64(out, conv->stride());
    WriteI64(out, conv->pad());
    WriteU32(out, conv->has_bias() ? 1 : 0);
    WriteTensor(out, conv->weight().value);
    if (conv->has_bias()) WriteTensor(out, conv->bias().value);
    return Status::OK();
  }
  if (auto* lin = dynamic_cast<Linear*>(layer)) {
    WriteU32(out, kTagLinear);
    WriteI64(out, lin->in_features());
    WriteI64(out, lin->out_features());
    WriteTensor(out, lin->weight().value);
    WriteTensor(out, lin->bias().value);
    return Status::OK();
  }
  if (auto* bn = dynamic_cast<BatchNorm2d*>(layer)) {
    WriteU32(out, kTagBatchNorm);
    WriteI64(out, bn->channels());
    WriteTensor(out, bn->gamma().value);
    WriteTensor(out, bn->beta().value);
    WriteTensor(out, bn->running_mean());
    WriteTensor(out, bn->running_var());
    return Status::OK();
  }
  if (dynamic_cast<ReLU*>(layer) != nullptr) {
    WriteU32(out, kTagReLU);
    return Status::OK();
  }
  if (auto* lma = dynamic_cast<LMAActivation*>(layer)) {
    WriteU32(out, kTagLma);
    WriteI64(out, lma->segments());
    WriteF32(out, lma->bound());
    WriteTensor(out, lma->slopes().value);
    WriteTensor(out, lma->offset().value);
    return Status::OK();
  }
  if (auto* pool = dynamic_cast<MaxPool2d*>(layer)) {
    WriteU32(out, kTagMaxPool);
    WriteI64(out, pool->kernel());
    WriteI64(out, pool->stride());
    return Status::OK();
  }
  if (dynamic_cast<GlobalAvgPool*>(layer) != nullptr) {
    WriteU32(out, kTagGlobalAvgPool);
    return Status::OK();
  }
  if (dynamic_cast<Flatten*>(layer) != nullptr) {
    WriteU32(out, kTagFlatten);
    return Status::OK();
  }
  if (auto* seq = dynamic_cast<Sequential*>(layer)) {
    WriteU32(out, kTagSequential);
    WriteI64(out, seq->NumChildren());
    for (int64_t i = 0; i < seq->NumChildren(); ++i) {
      AUTOMC_RETURN_IF_ERROR(WriteLayer(out, seq->Child(i)));
    }
    return Status::OK();
  }
  if (auto* lr = dynamic_cast<LowRankConv*>(layer)) {
    WriteU32(out, kTagLowRankConv);
    WriteI64(out, lr->num_stages());
    for (int64_t i = 0; i < lr->num_stages(); ++i) {
      AUTOMC_RETURN_IF_ERROR(WriteLayer(out, lr->stage(i)));
    }
    return Status::OK();
  }
  if (auto* block = dynamic_cast<ResidualBlock*>(layer)) {
    WriteU32(out, kTagResidualBlock);
    WriteU32(out, block->kind() == ResidualBlock::Kind::kBasic ? 0 : 1);
    WriteI64(out, block->in_channels());
    WriteI64(out, block->out_channels());
    WriteI64(out, block->stride());
    AUTOMC_RETURN_IF_ERROR(WriteOptional(out, block->conv1()));
    AUTOMC_RETURN_IF_ERROR(WriteOptional(out, block->bn1()));
    AUTOMC_RETURN_IF_ERROR(WriteOptional(out, block->act1()));
    AUTOMC_RETURN_IF_ERROR(WriteOptional(out, block->conv2()));
    AUTOMC_RETURN_IF_ERROR(WriteOptional(out, block->bn2()));
    AUTOMC_RETURN_IF_ERROR(WriteOptional(out, block->act2()));
    AUTOMC_RETURN_IF_ERROR(WriteOptional(out, block->conv3()));
    AUTOMC_RETURN_IF_ERROR(WriteOptional(out, block->bn3()));
    AUTOMC_RETURN_IF_ERROR(WriteOptional(out, block->act_out()));
    AUTOMC_RETURN_IF_ERROR(WriteOptional(out, block->downsample_conv()));
    AUTOMC_RETURN_IF_ERROR(WriteOptional(out, block->downsample_bn()));
    return Status::OK();
  }
  return Status::Unimplemented("cannot serialize layer: " + layer->Name());
}

Result<std::unique_ptr<Layer>> ReadLayer(std::istream* in);

// Reads an optional sub-layer; null when the tag says absent.
Result<std::unique_ptr<Layer>> ReadOptional(std::istream* in) {
  // Peek the tag by reading it and dispatching manually.
  AUTOMC_ASSIGN_OR_RETURN(uint32_t tag, ReadU32(in));
  if (tag == kTagAbsent) return std::unique_ptr<Layer>(nullptr);
  // Re-dispatch with the tag already consumed.
  in->seekg(-static_cast<std::streamoff>(sizeof(uint32_t)), std::ios::cur);
  return ReadLayer(in);
}

template <typename T>
Result<std::unique_ptr<T>> CastLayer(Result<std::unique_ptr<Layer>> layer,
                                     const char* expectation) {
  if (!layer.ok()) return layer.status();
  if (layer.value() == nullptr) return std::unique_ptr<T>(nullptr);
  T* cast = dynamic_cast<T*>(layer.value().get());
  if (cast == nullptr) {
    return Status::InvalidArgument(std::string("expected ") + expectation);
  }
  layer.value().release();
  return std::unique_ptr<T>(cast);
}

Result<std::unique_ptr<Layer>> ReadLayer(std::istream* in) {
  AUTOMC_ASSIGN_OR_RETURN(uint32_t tag, ReadU32(in));
  switch (tag) {
    case kTagConv2d: {
      AUTOMC_ASSIGN_OR_RETURN(int64_t in_c, ReadI64(in));
      AUTOMC_ASSIGN_OR_RETURN(int64_t out_c, ReadI64(in));
      AUTOMC_ASSIGN_OR_RETURN(int64_t kernel, ReadI64(in));
      AUTOMC_ASSIGN_OR_RETURN(int64_t stride, ReadI64(in));
      AUTOMC_ASSIGN_OR_RETURN(int64_t pad, ReadI64(in));
      AUTOMC_ASSIGN_OR_RETURN(uint32_t has_bias, ReadU32(in));
      // nullptr rng: skip weight init, the stream overwrites it below.
      auto conv = std::make_unique<Conv2d>(in_c, out_c, kernel, stride, pad,
                                           has_bias != 0, nullptr);
      AUTOMC_ASSIGN_OR_RETURN(tensor::Tensor w, ReadTensor(in));
      if (w.numel() != conv->weight().value.numel()) {
        return Status::InvalidArgument("conv weight size mismatch");
      }
      conv->weight().value = w.Reshaped(conv->weight().value.shape());
      if (has_bias != 0) {
        AUTOMC_ASSIGN_OR_RETURN(tensor::Tensor b, ReadTensor(in));
        if (b.numel() != out_c) {
          return Status::InvalidArgument("conv bias size mismatch");
        }
        conv->bias().value = b.Reshaped({out_c});
      }
      return std::unique_ptr<Layer>(std::move(conv));
    }
    case kTagLinear: {
      AUTOMC_ASSIGN_OR_RETURN(int64_t in_f, ReadI64(in));
      AUTOMC_ASSIGN_OR_RETURN(int64_t out_f, ReadI64(in));
      auto lin = std::make_unique<Linear>(in_f, out_f, nullptr);
      AUTOMC_ASSIGN_OR_RETURN(tensor::Tensor w, ReadTensor(in));
      AUTOMC_ASSIGN_OR_RETURN(tensor::Tensor b, ReadTensor(in));
      if (w.numel() != in_f * out_f || b.numel() != out_f) {
        return Status::InvalidArgument("linear size mismatch");
      }
      lin->weight().value = w.Reshaped({out_f, in_f});
      lin->bias().value = b.Reshaped({out_f});
      return std::unique_ptr<Layer>(std::move(lin));
    }
    case kTagBatchNorm: {
      AUTOMC_ASSIGN_OR_RETURN(int64_t channels, ReadI64(in));
      auto bn = std::make_unique<BatchNorm2d>(channels);
      AUTOMC_ASSIGN_OR_RETURN(bn->gamma().value, ReadTensor(in));
      AUTOMC_ASSIGN_OR_RETURN(bn->beta().value, ReadTensor(in));
      AUTOMC_ASSIGN_OR_RETURN(bn->running_mean(), ReadTensor(in));
      AUTOMC_ASSIGN_OR_RETURN(bn->running_var(), ReadTensor(in));
      if (bn->gamma().value.numel() != channels) {
        return Status::InvalidArgument("batchnorm size mismatch");
      }
      return std::unique_ptr<Layer>(std::move(bn));
    }
    case kTagReLU:
      return std::unique_ptr<Layer>(std::make_unique<ReLU>());
    case kTagLma: {
      AUTOMC_ASSIGN_OR_RETURN(int64_t segments, ReadI64(in));
      AUTOMC_ASSIGN_OR_RETURN(float bound, ReadF32(in));
      if (segments < 2 || segments > 1024 || bound <= 0) {
        return Status::InvalidArgument("implausible LMA parameters");
      }
      auto lma = std::make_unique<LMAActivation>(segments, bound);
      AUTOMC_ASSIGN_OR_RETURN(lma->slopes().value, ReadTensor(in));
      AUTOMC_ASSIGN_OR_RETURN(lma->offset().value, ReadTensor(in));
      if (lma->slopes().value.numel() != segments) {
        return Status::InvalidArgument("LMA slopes size mismatch");
      }
      return std::unique_ptr<Layer>(std::move(lma));
    }
    case kTagMaxPool: {
      AUTOMC_ASSIGN_OR_RETURN(int64_t kernel, ReadI64(in));
      AUTOMC_ASSIGN_OR_RETURN(int64_t stride, ReadI64(in));
      if (kernel <= 0 || stride <= 0) {
        return Status::InvalidArgument("implausible pool parameters");
      }
      return std::unique_ptr<Layer>(std::make_unique<MaxPool2d>(kernel, stride));
    }
    case kTagGlobalAvgPool:
      return std::unique_ptr<Layer>(std::make_unique<GlobalAvgPool>());
    case kTagFlatten:
      return std::unique_ptr<Layer>(std::make_unique<Flatten>());
    case kTagSequential: {
      AUTOMC_ASSIGN_OR_RETURN(int64_t n, ReadI64(in));
      if (n < 0 || n > 4096) {
        return Status::InvalidArgument("implausible child count");
      }
      auto seq = std::make_unique<Sequential>();
      for (int64_t i = 0; i < n; ++i) {
        AUTOMC_ASSIGN_OR_RETURN(std::unique_ptr<Layer> child, ReadLayer(in));
        seq->Add(std::move(child));
      }
      return std::unique_ptr<Layer>(std::move(seq));
    }
    case kTagLowRankConv: {
      AUTOMC_ASSIGN_OR_RETURN(int64_t n, ReadI64(in));
      if (n < 1 || n > 8) {
        return Status::InvalidArgument("implausible stage count");
      }
      std::vector<std::unique_ptr<Conv2d>> stages;
      for (int64_t i = 0; i < n; ++i) {
        AUTOMC_ASSIGN_OR_RETURN(
            std::unique_ptr<Conv2d> stage,
            CastLayer<Conv2d>(ReadLayer(in), "Conv2d stage"));
        if (stage == nullptr) {
          return Status::InvalidArgument("null low-rank stage");
        }
        stages.push_back(std::move(stage));
      }
      return std::unique_ptr<Layer>(
          std::make_unique<LowRankConv>(std::move(stages)));
    }
    case kTagResidualBlock: {
      AUTOMC_ASSIGN_OR_RETURN(uint32_t kind_u, ReadU32(in));
      AUTOMC_ASSIGN_OR_RETURN(int64_t in_c, ReadI64(in));
      AUTOMC_ASSIGN_OR_RETURN(int64_t out_c, ReadI64(in));
      AUTOMC_ASSIGN_OR_RETURN(int64_t stride, ReadI64(in));
      auto kind = kind_u == 0 ? ResidualBlock::Kind::kBasic
                              : ResidualBlock::Kind::kBottleneck;
      auto block = ResidualBlock::MakeShell(kind, in_c, out_c, stride);
      AUTOMC_ASSIGN_OR_RETURN(std::unique_ptr<Layer> conv1, ReadOptional(in));
      block->set_conv1(std::move(conv1));
      AUTOMC_ASSIGN_OR_RETURN(
          std::unique_ptr<BatchNorm2d> bn1,
          CastLayer<BatchNorm2d>(ReadOptional(in), "BatchNorm2d"));
      block->set_bn1(std::move(bn1));
      AUTOMC_ASSIGN_OR_RETURN(std::unique_ptr<Layer> act1, ReadOptional(in));
      block->set_act1(std::move(act1));
      AUTOMC_ASSIGN_OR_RETURN(std::unique_ptr<Layer> conv2, ReadOptional(in));
      block->set_conv2(std::move(conv2));
      AUTOMC_ASSIGN_OR_RETURN(
          std::unique_ptr<BatchNorm2d> bn2,
          CastLayer<BatchNorm2d>(ReadOptional(in), "BatchNorm2d"));
      block->set_bn2(std::move(bn2));
      AUTOMC_ASSIGN_OR_RETURN(std::unique_ptr<Layer> act2, ReadOptional(in));
      block->set_act2(std::move(act2));
      AUTOMC_ASSIGN_OR_RETURN(std::unique_ptr<Layer> conv3, ReadOptional(in));
      block->set_conv3(std::move(conv3));
      AUTOMC_ASSIGN_OR_RETURN(
          std::unique_ptr<BatchNorm2d> bn3,
          CastLayer<BatchNorm2d>(ReadOptional(in), "BatchNorm2d"));
      block->set_bn3(std::move(bn3));
      AUTOMC_ASSIGN_OR_RETURN(std::unique_ptr<Layer> act_out, ReadOptional(in));
      block->set_act_out(std::move(act_out));
      AUTOMC_ASSIGN_OR_RETURN(
          std::unique_ptr<Conv2d> ds_conv,
          CastLayer<Conv2d>(ReadOptional(in), "Conv2d"));
      AUTOMC_ASSIGN_OR_RETURN(
          std::unique_ptr<BatchNorm2d> ds_bn,
          CastLayer<BatchNorm2d>(ReadOptional(in), "BatchNorm2d"));
      block->set_downsample(std::move(ds_conv), std::move(ds_bn));
      return std::unique_ptr<Layer>(std::move(block));
    }
    default:
      return Status::InvalidArgument("unknown layer tag " +
                                     std::to_string(tag));
  }
}

}  // namespace

Status SerializeModel(Model* model, std::ostream* out) {
  if (model == nullptr || out == nullptr) {
    return Status::InvalidArgument("null model or stream");
  }
  WriteU32(out, kMagic);
  WriteU32(out, kVersion);
  const ModelSpec& spec = model->spec();
  WriteString(out, spec.family);
  WriteI64(out, spec.depth);
  WriteI64(out, spec.num_classes);
  WriteI64(out, spec.base_width);
  WriteI64(out, spec.in_channels);
  WriteI64(out, spec.image_size);
  WriteI64(out, model->weight_bits());
  AUTOMC_RETURN_IF_ERROR(WriteLayer(out, model->net()));
  if (!out->good()) return Status::Internal("stream write failure");
  return Status::OK();
}

Result<std::unique_ptr<Model>> DeserializeModel(std::istream* in) {
  if (in == nullptr) return Status::InvalidArgument("null stream");
  AUTOMC_ASSIGN_OR_RETURN(uint32_t magic, ReadU32(in));
  if (magic != kMagic) return Status::InvalidArgument("bad magic");
  AUTOMC_ASSIGN_OR_RETURN(uint32_t version, ReadU32(in));
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported version " +
                                   std::to_string(version));
  }
  ModelSpec spec;
  AUTOMC_ASSIGN_OR_RETURN(spec.family, ReadString(in));
  AUTOMC_ASSIGN_OR_RETURN(int64_t depth, ReadI64(in));
  AUTOMC_ASSIGN_OR_RETURN(int64_t num_classes, ReadI64(in));
  AUTOMC_ASSIGN_OR_RETURN(int64_t base_width, ReadI64(in));
  AUTOMC_ASSIGN_OR_RETURN(int64_t in_channels, ReadI64(in));
  AUTOMC_ASSIGN_OR_RETURN(int64_t image_size, ReadI64(in));
  spec.depth = static_cast<int>(depth);
  spec.num_classes = static_cast<int>(num_classes);
  spec.base_width = static_cast<int>(base_width);
  spec.in_channels = static_cast<int>(in_channels);
  spec.image_size = static_cast<int>(image_size);
  AUTOMC_ASSIGN_OR_RETURN(int64_t weight_bits, ReadI64(in));
  if (weight_bits < 1 || weight_bits > 32) {
    return Status::InvalidArgument("implausible weight bits");
  }

  AUTOMC_ASSIGN_OR_RETURN(std::unique_ptr<Layer> root, ReadLayer(in));
  auto* seq = dynamic_cast<Sequential*>(root.get());
  if (seq == nullptr) {
    return Status::InvalidArgument("model root is not Sequential");
  }
  root.release();
  auto model =
      std::make_unique<Model>(spec, std::unique_ptr<Sequential>(seq));
  model->set_weight_bits(static_cast<int>(weight_bits));
  return model;
}

Status SaveModel(Model* model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return Status::NotFound("cannot open " + path);
  return SerializeModel(model, &out);
}

Result<std::unique_ptr<Model>> LoadModel(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("cannot open " + path);
  return DeserializeModel(&in);
}

}  // namespace nn
}  // namespace automc
