#ifndef AUTOMC_NN_SEQNET_H_
#define AUTOMC_NN_SEQNET_H_

#include <vector>

#include "nn/layer.h"

namespace automc {
namespace nn {

// Building blocks for the small sequence models in AutoMC's search stack:
// the multi-objective step evaluator F_mo encodes the strategy sequence with
// a GRU, and the RL baseline's controller is a GRU policy. These operate on
// single 1-D vectors (sequences are short and processed one at a time) with
// caller-held caches, so one instance can run many forward passes before a
// backward pass.

// Gated recurrent unit cell over 1-D vectors.
class GruCell {
 public:
  GruCell(int64_t input_dim, int64_t hidden_dim, Rng* rng);

  int64_t input_dim() const { return input_dim_; }
  int64_t hidden_dim() const { return hidden_dim_; }
  std::vector<Param*> Params();

  // Per-step values needed by BackwardStep.
  struct Cache {
    tensor::Tensor x, h_prev, z, r, n;
  };

  // h_t = (1-z)*n + z*h_prev. Fills `cache` when non-null. Const (reads
  // weights only), so concurrent Steps from parallel scoring loops are safe.
  tensor::Tensor Step(const tensor::Tensor& x, const tensor::Tensor& h_prev,
                      Cache* cache) const;

  // Given dL/dh_t, accumulates parameter gradients and returns
  // {dL/dx_t, dL/dh_{t-1}}.
  std::pair<tensor::Tensor, tensor::Tensor> BackwardStep(
      const Cache& cache, const tensor::Tensor& dh);

  tensor::Tensor InitialState() const {
    return tensor::Tensor::Zeros({hidden_dim_});
  }

 private:
  int64_t input_dim_, hidden_dim_;
  // Gate weights: W* act on x, U* act on h, b* are biases.
  Param wz_, uz_, bz_;
  Param wr_, ur_, br_;
  Param wn_, un_, bn_;
};

// Fully connected stack with ReLU between layers (none after the last), on
// 1-D vectors, with caller-held caches.
class VecMlp {
 public:
  // dims = {input, hidden..., output}; at least {in, out}.
  VecMlp(std::vector<int64_t> dims, Rng* rng);

  int64_t input_dim() const { return dims_.front(); }
  int64_t output_dim() const { return dims_.back(); }
  std::vector<Param*> Params();

  struct Cache {
    // Input to each linear layer (post-activation of the previous one).
    std::vector<tensor::Tensor> inputs;
    // Pre-activation outputs of each layer.
    std::vector<tensor::Tensor> pre;
  };

  // Const (reads weights only); safe to call concurrently with caller-held
  // caches.
  tensor::Tensor Forward(const tensor::Tensor& x, Cache* cache) const;
  // Accumulates parameter gradients; returns dL/dx.
  tensor::Tensor Backward(const Cache& cache, const tensor::Tensor& dy);

 private:
  std::vector<int64_t> dims_;
  std::vector<Param> weights_;  // [out, in] each
  std::vector<Param> biases_;   // [out] each
};

}  // namespace nn
}  // namespace automc

#endif  // AUTOMC_NN_SEQNET_H_
