#ifndef AUTOMC_NN_RESIDUAL_H_
#define AUTOMC_NN_RESIDUAL_H_

#include <memory>

#include "nn/layers.h"

namespace automc {
namespace nn {

// CIFAR-style residual block. kBasic is the two-3x3-conv block of
// ResNet-20/56; kBottleneck is the 1x1 / 3x3 / 1x1 block (expansion 4) of
// ResNet-164. The skip path is identity, or 1x1 conv + BN when the spatial
// stride or channel count changes.
//
// Conv members are held as Layer pointers because low-rank compression may
// replace a Conv2d with a decomposed composite; activation members are Layer
// pointers because LMA distillation swaps ReLU for LMAActivation.
class ResidualBlock : public Layer {
 public:
  enum class Kind { kBasic, kBottleneck };
  static constexpr int64_t kBottleneckExpansion = 4;

  // For kBasic: in_c -> planes (3x3, stride) -> planes (3x3).
  // For kBottleneck: in_c -> planes (1x1) -> planes (3x3, stride)
  //                  -> planes*4 (1x1).
  ResidualBlock(Kind kind, int64_t in_c, int64_t planes, int64_t stride,
                Rng* rng);

  tensor::Tensor Forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_out) override;
  std::vector<Param*> Params() override;
  std::unique_ptr<Layer> Clone() const override;
  std::string Name() const override {
    return kind_ == Kind::kBasic ? "BasicBlock" : "BottleneckBlock";
  }
  int64_t FlopsLastForward() const override;

  Kind kind() const { return kind_; }
  int64_t in_channels() const { return in_c_; }
  int64_t out_channels() const { return out_c_; }
  int64_t stride() const { return stride_; }
  bool has_downsample() const { return downsample_conv_ != nullptr; }

  // --- surgery access -----------------------------------------------------
  Layer* conv1() { return conv1_.get(); }
  Layer* conv2() { return conv2_.get(); }
  Layer* conv3() { return conv3_.get(); }  // null for kBasic
  BatchNorm2d* bn1() { return bn1_.get(); }
  BatchNorm2d* bn2() { return bn2_.get(); }
  BatchNorm2d* bn3() { return bn3_.get(); }  // null for kBasic
  Conv2d* downsample_conv() { return downsample_conv_.get(); }
  BatchNorm2d* downsample_bn() { return downsample_bn_.get(); }

  void set_conv1(std::unique_ptr<Layer> l) { conv1_ = std::move(l); }
  void set_conv2(std::unique_ptr<Layer> l) { conv2_ = std::move(l); }
  void set_conv3(std::unique_ptr<Layer> l) { conv3_ = std::move(l); }

  // Replaces every activation in the block with clones of `prototype`.
  void ReplaceActivations(const Layer& prototype);

  // --- serialization support ------------------------------------------------
  // An empty shell whose members are installed piecewise by the
  // deserializer (nn/serialize.cc).
  static std::unique_ptr<ResidualBlock> MakeShell(Kind kind, int64_t in_c,
                                                  int64_t out_c,
                                                  int64_t stride) {
    return std::unique_ptr<ResidualBlock>(
        new ResidualBlock(kind, in_c, out_c, stride));
  }
  Layer* act1() { return act1_.get(); }
  Layer* act2() { return act2_.get(); }
  Layer* act_out() { return act_out_.get(); }
  void set_bn1(std::unique_ptr<BatchNorm2d> l) { bn1_ = std::move(l); }
  void set_bn2(std::unique_ptr<BatchNorm2d> l) { bn2_ = std::move(l); }
  void set_bn3(std::unique_ptr<BatchNorm2d> l) { bn3_ = std::move(l); }
  void set_act1(std::unique_ptr<Layer> l) { act1_ = std::move(l); }
  void set_act2(std::unique_ptr<Layer> l) { act2_ = std::move(l); }
  void set_act_out(std::unique_ptr<Layer> l) { act_out_ = std::move(l); }
  void set_downsample(std::unique_ptr<Conv2d> conv,
                      std::unique_ptr<BatchNorm2d> bn) {
    downsample_conv_ = std::move(conv);
    downsample_bn_ = std::move(bn);
  }

 private:
  // Builds an empty shell for Clone().
  ResidualBlock(Kind kind, int64_t in_c, int64_t out_c, int64_t stride)
      : kind_(kind), in_c_(in_c), out_c_(out_c), stride_(stride) {}

  Kind kind_;
  int64_t in_c_;
  int64_t out_c_;
  int64_t stride_;

  std::unique_ptr<Layer> conv1_;
  std::unique_ptr<BatchNorm2d> bn1_;
  std::unique_ptr<Layer> act1_;
  std::unique_ptr<Layer> conv2_;
  std::unique_ptr<BatchNorm2d> bn2_;
  std::unique_ptr<Layer> act2_;
  std::unique_ptr<Layer> conv3_;           // bottleneck only
  std::unique_ptr<BatchNorm2d> bn3_;       // bottleneck only
  std::unique_ptr<Layer> act_out_;
  std::unique_ptr<Conv2d> downsample_conv_;
  std::unique_ptr<BatchNorm2d> downsample_bn_;
};

}  // namespace nn
}  // namespace automc

#endif  // AUTOMC_NN_RESIDUAL_H_
