#include "nn/trainer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/metrics.h"
#include "common/trace.h"
#include "nn/optimizer.h"
#include "nn/visit.h"

namespace automc {
namespace nn {

using tensor::Tensor;

namespace {

// Adds the L1 subgradient of |gamma| to every BatchNorm gamma gradient
// (Network Slimming sparsity term).
void ApplyBnGammaL1(Model* model, float strength) {
  VisitLayers(model->net(), [strength](Layer* layer) {
    auto* bn = dynamic_cast<BatchNorm2d*>(layer);
    if (bn == nullptr) return;
    Param& gamma = bn->gamma();
    for (int64_t i = 0; i < gamma.value.numel(); ++i) {
      float g = gamma.value[i];
      gamma.grad[i] += strength * (g > 0.0f ? 1.0f : (g < 0.0f ? -1.0f : 0.0f));
    }
  });
}

}  // namespace

Status Trainer::Fit(Model* model, const data::Dataset& train, LossFn loss_fn,
                    EpochHook epoch_hook, float* final_loss) {
  if (model == nullptr) return Status::InvalidArgument("model is null");
  if (train.Size() == 0) return Status::InvalidArgument("empty training set");
  if (config_.epochs < 0) return Status::InvalidArgument("negative epochs");
  if (config_.batch_size <= 0) return Status::InvalidArgument("bad batch size");

  if (!loss_fn) {
    loss_fn = [](const Tensor& logits, const std::vector<int>& labels,
                 const Tensor&) { return CrossEntropy(logits, labels); };
  }

  Rng rng(config_.seed);
  Sgd opt(config_.lr, config_.momentum, config_.weight_decay);
  std::vector<int64_t> order(static_cast<size_t>(train.Size()));
  std::iota(order.begin(), order.end(), 0);

  float last_epoch_loss = 0.0f;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    opt.set_lr(config_.lr *
               std::pow(config_.lr_decay, static_cast<float>(epoch)));
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    int64_t batches = 0;
    {
      AUTOMC_SCOPED_TIMER("trainer.epoch_ms");
      for (size_t start = 0; start < order.size();
           start += static_cast<size_t>(config_.batch_size)) {
        size_t end = std::min(order.size(),
                              start + static_cast<size_t>(config_.batch_size));
        std::vector<int64_t> idx(order.begin() + static_cast<int64_t>(start),
                                 order.begin() + static_cast<int64_t>(end));
        Tensor images = train.GatherImages(idx);
        std::vector<int> labels = train.GatherLabels(idx);
        if (config_.augment) {
          images = data::Augment(images, config_.augment_config, &rng);
        }

        model->ZeroGrad();
        // Intra-batch data parallelism lives inside the layer kernels
        // (per-sample conv im2col+GEMM, per-channel batch norm, per-row
        // GEMM), not here: splitting the batch across model replicas would
        // change batch-norm statistics and gradient reduction order. The
        // kernels chunk work independently of AUTOMC_THREADS and reduce
        // shared gradients in a fixed order, so the loss curve is
        // bit-identical for any thread count.
        Tensor logits = model->Forward(images, /*training=*/true);
        LossResult lr = loss_fn(logits, labels, images);
        model->Backward(lr.grad);
        if (config_.bn_gamma_l1 > 0.0f) {
          ApplyBnGammaL1(model, config_.bn_gamma_l1);
        }
        opt.Step(model->Params());
        epoch_loss += lr.loss;
        ++batches;
      }
    }
    last_epoch_loss =
        batches > 0 ? static_cast<float>(epoch_loss / batches) : 0.0f;
    AUTOMC_METRIC_COUNT("trainer.epochs");
    AUTOMC_METRIC_COUNT("trainer.steps", batches);
    AUTOMC_METRIC_OBSERVE("trainer.epoch_loss", last_epoch_loss);
    if (epoch_hook) epoch_hook(epoch, model);
    if (!std::isfinite(last_epoch_loss)) {
      // Diverged (aggressive compression + high lr can blow up). Stop
      // training; the caller observes the resulting (poor) accuracy.
      break;
    }
  }
  if (final_loss != nullptr) *final_loss = last_epoch_loss;
  return Status::OK();
}

double Trainer::Evaluate(Model* model, const data::Dataset& ds,
                         int batch_size) {
  AUTOMC_CHECK(model != nullptr);
  if (ds.Size() == 0) return 0.0;
  int64_t correct = 0;
  for (int64_t start = 0; start < ds.Size(); start += batch_size) {
    int64_t end = std::min(ds.Size(), start + batch_size);
    std::vector<int64_t> idx;
    idx.reserve(static_cast<size_t>(end - start));
    for (int64_t i = start; i < end; ++i) idx.push_back(i);
    Tensor images = ds.GatherImages(idx);
    std::vector<int> labels = ds.GatherLabels(idx);
    Tensor logits = model->Forward(images, /*training=*/false);
    correct += static_cast<int64_t>(
        std::llround(Accuracy(logits, labels) * static_cast<double>(labels.size())));
  }
  return static_cast<double>(correct) / static_cast<double>(ds.Size());
}

}  // namespace nn
}  // namespace automc
