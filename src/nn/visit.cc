#include "nn/visit.h"

#include "nn/layers.h"
#include "nn/lowrank.h"
#include "nn/residual.h"

namespace automc {
namespace nn {

void VisitLayers(Layer* root, const std::function<void(Layer*)>& fn) {
  if (root == nullptr) return;
  fn(root);
  if (auto* seq = dynamic_cast<Sequential*>(root)) {
    for (int64_t i = 0; i < seq->NumChildren(); ++i) {
      VisitLayers(seq->Child(i), fn);
    }
    return;
  }
  if (auto* block = dynamic_cast<ResidualBlock*>(root)) {
    VisitLayers(block->conv1(), fn);
    if (block->bn1()) fn(block->bn1());
    VisitLayers(block->conv2(), fn);
    if (block->bn2()) fn(block->bn2());
    VisitLayers(block->conv3(), fn);
    if (block->bn3()) fn(block->bn3());
    if (block->downsample_conv()) fn(block->downsample_conv());
    if (block->downsample_bn()) fn(block->downsample_bn());
    return;
  }
  if (auto* lr = dynamic_cast<LowRankConv*>(root)) {
    for (int64_t i = 0; i < lr->num_stages(); ++i) fn(lr->stage(i));
    return;
  }
}

}  // namespace nn
}  // namespace automc
