#ifndef AUTOMC_NN_LAYERS_H_
#define AUTOMC_NN_LAYERS_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace automc {
namespace nn {

// 2-D convolution over NCHW input. Weight layout is [out_c, in_c, k, k].
// Bias is optional (CIFAR-style nets put normalization right after convs).
class Conv2d : public Layer {
 public:
  // `rng == nullptr` skips Kaiming init and leaves the weight aliasing the
  // shared zero page — for shells whose weights are assigned right after
  // construction (Clone, deserialization).
  Conv2d(int64_t in_c, int64_t out_c, int64_t kernel, int64_t stride,
         int64_t pad, bool has_bias, Rng* rng);

  tensor::Tensor Forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_out) override;
  std::vector<Param*> Params() override;
  std::unique_ptr<Layer> Clone() const override;
  std::string Name() const override { return "Conv2d"; }
  int64_t FlopsLastForward() const override { return flops_last_; }

  int64_t in_channels() const { return in_c_; }
  int64_t out_channels() const { return out_c_; }
  int64_t kernel() const { return kernel_; }
  int64_t stride() const { return stride_; }
  int64_t pad() const { return pad_; }
  bool has_bias() const { return has_bias_; }

  Param& weight() { return weight_; }
  const Param& weight() const { return weight_; }
  Param& bias() { return bias_; }
  const Param& bias() const { return bias_; }

  // Structured surgery: keep only the listed output filters (sorted unique
  // indices) / input channels. Resets gradients and caches.
  void KeepOutputFilters(const std::vector<int64_t>& keep);
  void KeepInputChannels(const std::vector<int64_t>& keep);

 private:
  int64_t in_c_, out_c_, kernel_, stride_, pad_;
  bool has_bias_;
  Param weight_;
  Param bias_;

  // Forward caches.
  std::vector<tensor::Tensor> cols_;  // per-sample im2col matrices
  std::vector<int64_t> x_shape_;
  int64_t flops_last_ = 0;
  bool cached_ = false;
};

// Fully connected layer over [N, in] input; weight [out, in], bias [out].
class Linear : public Layer {
 public:
  // As with Conv2d, `rng == nullptr` builds a zero-page-aliased shell.
  Linear(int64_t in, int64_t out, Rng* rng);

  tensor::Tensor Forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_out) override;
  std::vector<Param*> Params() override;
  std::unique_ptr<Layer> Clone() const override;
  std::string Name() const override { return "Linear"; }
  int64_t FlopsLastForward() const override { return flops_last_; }

  int64_t in_features() const { return in_; }
  int64_t out_features() const { return out_; }
  Param& weight() { return weight_; }
  Param& bias() { return bias_; }

  // Keep only the listed input features (when the upstream conv/pool
  // shrinks). `group` is the number of consecutive features per retained
  // upstream channel (spatial positions after flatten).
  void KeepInputFeatures(const std::vector<int64_t>& keep_channels,
                         int64_t group);

 private:
  int64_t in_, out_;
  Param weight_;
  Param bias_;
  tensor::Tensor x_cache_;
  int64_t flops_last_ = 0;
};

// Batch normalization over the channel axis of NCHW input.
class BatchNorm2d : public Layer {
 public:
  explicit BatchNorm2d(int64_t channels);

  tensor::Tensor Forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_out) override;
  std::vector<Param*> Params() override;
  std::unique_ptr<Layer> Clone() const override;
  std::string Name() const override { return "BatchNorm2d"; }

  int64_t channels() const { return channels_; }
  Param& gamma() { return gamma_; }
  Param& beta() { return beta_; }
  tensor::Tensor& running_mean() { return running_mean_; }
  tensor::Tensor& running_var() { return running_var_; }

  void KeepChannels(const std::vector<int64_t>& keep);

 private:
  int64_t channels_;
  Param gamma_;
  Param beta_;
  tensor::Tensor running_mean_;
  tensor::Tensor running_var_;
  float momentum_ = 0.1f;
  float eps_ = 1e-5f;

  // Forward caches (training mode).
  tensor::Tensor x_hat_;
  tensor::Tensor batch_inv_std_;  // [C]
  std::vector<int64_t> x_shape_;
  bool trained_forward_ = false;
};

// Rectified linear unit (any shape).
class ReLU : public Layer {
 public:
  tensor::Tensor Forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_out) override;
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<ReLU>();
  }
  std::string Name() const override { return "ReLU"; }

 private:
  tensor::Tensor mask_;
};

// Light Multi-segment Activation (LMA, Xu et al. 2020): a learnable
// piecewise-linear activation with fixed uniform breakpoints in
// [-bound, bound] and one learnable slope per segment (plus a learnable
// output offset). Used by the LMA distillation method so small students can
// mimic teachers more flexibly than with ReLU.
class LMAActivation : public Layer {
 public:
  explicit LMAActivation(int64_t segments, float bound = 2.0f);

  tensor::Tensor Forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_out) override;
  std::vector<Param*> Params() override;
  std::unique_ptr<Layer> Clone() const override;
  std::string Name() const override { return "LMA"; }

  int64_t segments() const { return segments_; }
  float bound() const { return bound_; }
  Param& slopes() { return slopes_; }
  Param& offset() { return offset_; }

 private:
  // Index of the segment containing x, and that segment's left edge.
  int64_t SegmentOf(float x) const;
  float SegmentLeft(int64_t seg) const;
  // Activation value at x given current slopes.
  float Eval(float x, int64_t seg) const;

  int64_t segments_;
  float bound_;
  float width_;
  Param slopes_;   // [segments]
  Param offset_;   // [1]
  tensor::Tensor x_cache_;
};

// Max pooling with square window.
class MaxPool2d : public Layer {
 public:
  MaxPool2d(int64_t kernel, int64_t stride);

  tensor::Tensor Forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_out) override;
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<MaxPool2d>(kernel_, stride_);
  }
  std::string Name() const override { return "MaxPool2d"; }
  int64_t kernel() const { return kernel_; }
  int64_t stride() const { return stride_; }

 private:
  int64_t kernel_, stride_;
  std::vector<int64_t> argmax_;
  std::vector<int64_t> x_shape_;
};

// Global average pooling: [N,C,H,W] -> [N,C,1,1].
class GlobalAvgPool : public Layer {
 public:
  tensor::Tensor Forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_out) override;
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<GlobalAvgPool>();
  }
  std::string Name() const override { return "GlobalAvgPool"; }

 private:
  std::vector<int64_t> x_shape_;
};

// Flattens [N,C,H,W] -> [N, C*H*W].
class Flatten : public Layer {
 public:
  tensor::Tensor Forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_out) override;
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<Flatten>();
  }
  std::string Name() const override { return "Flatten"; }

 private:
  std::vector<int64_t> x_shape_;
};

// Ordered container of layers executed in sequence.
class Sequential : public Layer {
 public:
  Sequential() = default;

  void Add(std::unique_ptr<Layer> layer) { children_.push_back(std::move(layer)); }
  int64_t NumChildren() const { return static_cast<int64_t>(children_.size()); }
  Layer* Child(int64_t i) { return children_[static_cast<size_t>(i)].get(); }
  const Layer* Child(int64_t i) const {
    return children_[static_cast<size_t>(i)].get();
  }
  // Replaces the child at `i`, returning the old layer (used by low-rank
  // surgery to swap a Conv2d for a decomposed composite).
  std::unique_ptr<Layer> ReplaceChild(int64_t i, std::unique_ptr<Layer> layer);

  tensor::Tensor Forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_out) override;
  std::vector<Param*> Params() override;
  std::unique_ptr<Layer> Clone() const override;
  std::string Name() const override { return "Sequential"; }
  int64_t FlopsLastForward() const override;

 private:
  std::vector<std::unique_ptr<Layer>> children_;
};

}  // namespace nn
}  // namespace automc

#endif  // AUTOMC_NN_LAYERS_H_
