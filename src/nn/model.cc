#include "nn/model.h"

namespace automc {
namespace nn {

int64_t Model::FlopsPerSample() {
  tensor::Tensor x({1, spec_.in_channels, spec_.image_size, spec_.image_size});
  net_->Forward(x, /*training=*/false);
  return net_->FlopsLastForward();
}

Result<std::unique_ptr<Model>> BuildResNet(const ModelSpec& spec, Rng* rng) {
  bool bottleneck;
  int blocks_per_stage;
  if ((spec.depth - 2) % 9 == 0 && spec.depth >= 164) {
    bottleneck = true;
    blocks_per_stage = (spec.depth - 2) / 9;
  } else if ((spec.depth - 2) % 6 == 0) {
    bottleneck = false;
    blocks_per_stage = (spec.depth - 2) / 6;
  } else {
    return Status::InvalidArgument("unsupported resnet depth " +
                                   std::to_string(spec.depth));
  }
  int64_t w = spec.base_width;

  auto net = std::make_unique<Sequential>();
  net->Add(std::make_unique<Conv2d>(spec.in_channels, w, 3, 1, 1, false, rng));
  net->Add(std::make_unique<BatchNorm2d>(w));
  net->Add(std::make_unique<ReLU>());

  auto kind = bottleneck ? ResidualBlock::Kind::kBottleneck
                         : ResidualBlock::Kind::kBasic;
  int64_t expansion = bottleneck ? ResidualBlock::kBottleneckExpansion : 1;
  int64_t in_c = w;
  for (int stage = 0; stage < 3; ++stage) {
    int64_t planes = w << stage;
    for (int b = 0; b < blocks_per_stage; ++b) {
      int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      net->Add(std::make_unique<ResidualBlock>(kind, in_c, planes, stride, rng));
      in_c = planes * expansion;
    }
  }
  net->Add(std::make_unique<GlobalAvgPool>());
  net->Add(std::make_unique<Flatten>());
  net->Add(std::make_unique<Linear>(in_c, spec.num_classes, rng));

  ModelSpec s = spec;
  s.family = "resnet";
  return std::make_unique<Model>(std::move(s), std::move(net));
}

Result<std::unique_ptr<Model>> BuildVgg(const ModelSpec& spec, Rng* rng) {
  // Width codes relative to the canonical 64-wide first stage; -1 = maxpool.
  std::vector<int> cfg;
  switch (spec.depth) {
    case 13:
      cfg = {1, 1, -1, 2, 2, -1, 4, 4, -1, 8, 8, -1, 8, 8, -1};
      break;
    case 16:
      cfg = {1, 1, -1, 2, 2, -1, 4, 4, 4, -1, 8, 8, 8, -1, 8, 8, 8, -1};
      break;
    case 19:
      cfg = {1, 1, -1, 2, 2, -1, 4, 4, 4, 4, -1,
             8, 8, 8, 8, -1, 8, 8, 8, 8, -1};
      break;
    default:
      return Status::InvalidArgument("unsupported vgg depth " +
                                     std::to_string(spec.depth));
  }

  auto net = std::make_unique<Sequential>();
  int64_t in_c = spec.in_channels;
  int64_t spatial = spec.image_size;
  for (int code : cfg) {
    if (code < 0) {
      // Pool only while the spatial size allows it; the scaled substrate's
      // 8x8 inputs support fewer pools than CIFAR's 32x32.
      if (spatial >= 2) {
        net->Add(std::make_unique<MaxPool2d>(2, 2));
        spatial /= 2;
      }
      continue;
    }
    int64_t out_c = static_cast<int64_t>(code) * spec.base_width;
    net->Add(std::make_unique<Conv2d>(in_c, out_c, 3, 1, 1, false, rng));
    net->Add(std::make_unique<BatchNorm2d>(out_c));
    net->Add(std::make_unique<ReLU>());
    in_c = out_c;
  }
  net->Add(std::make_unique<GlobalAvgPool>());
  net->Add(std::make_unique<Flatten>());
  net->Add(std::make_unique<Linear>(in_c, spec.num_classes, rng));

  ModelSpec s = spec;
  s.family = "vgg";
  return std::make_unique<Model>(std::move(s), std::move(net));
}

Result<std::unique_ptr<Model>> BuildModel(const ModelSpec& spec, Rng* rng) {
  if (spec.family == "resnet") return BuildResNet(spec, rng);
  if (spec.family == "vgg") return BuildVgg(spec, rng);
  return Status::InvalidArgument("unknown model family: " + spec.family);
}

}  // namespace nn
}  // namespace automc
