#ifndef AUTOMC_NN_LOSS_H_
#define AUTOMC_NN_LOSS_H_

#include <vector>

#include "tensor/tensor.h"

namespace automc {
namespace nn {

// Loss value plus its gradient with respect to the logits argument.
struct LossResult {
  float loss = 0.0f;
  tensor::Tensor grad;  // same shape as the logits
};

// Mean softmax cross-entropy over the batch; labels in [0, num_classes).
LossResult CrossEntropy(const tensor::Tensor& logits,
                        const std::vector<int>& labels);

// Mean negative likelihood of the correct class, -p_y (linear, not log).
// Distinct from CrossEntropy; one of the LFB auxiliary-loss choices (HP16).
LossResult NegativeLikelihood(const tensor::Tensor& logits,
                              const std::vector<int>& labels);

// Mean squared error between softmax probabilities and the one-hot target.
LossResult SoftmaxMse(const tensor::Tensor& logits,
                      const std::vector<int>& labels);

// Plain mean squared error between two equal-shaped tensors (gradient with
// respect to `pred`). Used for logit-matching auxiliary losses.
LossResult Mse(const tensor::Tensor& pred, const tensor::Tensor& target);

// Hinton-style distillation term: T^2 * KL(softmax(teacher/T) ||
// softmax(student/T)), averaged over the batch. Gradient is with respect to
// the student logits.
LossResult DistillationKl(const tensor::Tensor& student_logits,
                          const tensor::Tensor& teacher_logits,
                          float temperature);

// Fraction of rows whose argmax matches the label.
double Accuracy(const tensor::Tensor& logits, const std::vector<int>& labels);

}  // namespace nn
}  // namespace automc

#endif  // AUTOMC_NN_LOSS_H_
