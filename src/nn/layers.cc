#include "nn/layers.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/thread_pool.h"

namespace automc {
namespace nn {

using tensor::ConvGeometry;
using tensor::Tensor;

namespace {

// Chunk size for element-wise activation kernels: big enough that the pool
// dispatch amortizes, independent of the thread count so chunk boundaries
// (and therefore results) are reproducible.
constexpr int64_t kElemwiseGrain = 1 << 13;

// Per-channel loops (BatchNorm) get a grain derived from the per-channel
// work so tiny maps stay serial.
int64_t ChannelGrain(int64_t channels, int64_t work_per_channel) {
  int64_t per_chunk = (1 << 14) / std::max<int64_t>(1, work_per_channel);
  if (per_chunk < 1) per_chunk = 1;
  if (per_chunk > channels && channels > 0) per_chunk = channels;
  return per_chunk;
}

}  // namespace

// ---------------------------------------------------------------------------
// Conv2d

Conv2d::Conv2d(int64_t in_c, int64_t out_c, int64_t kernel, int64_t stride,
               int64_t pad, bool has_bias, Rng* rng)
    : in_c_(in_c),
      out_c_(out_c),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      has_bias_(has_bias),
      weight_(rng != nullptr
                  ? Tensor::KaimingNormal({out_c, in_c, kernel, kernel},
                                          in_c * kernel * kernel, rng)
                  : Tensor::Zeros({out_c, in_c, kernel, kernel})),
      bias_(Tensor::Zeros({has_bias ? out_c : 0})) {
  AUTOMC_CHECK_GT(in_c, 0);
  AUTOMC_CHECK_GT(out_c, 0);
  AUTOMC_CHECK_GT(kernel, 0);
  AUTOMC_CHECK_GT(stride, 0);
}

Tensor Conv2d::Forward(const Tensor& x, bool training) {
  AUTOMC_CHECK_EQ(x.dim(), 4);
  AUTOMC_CHECK_EQ(x.size(1), in_c_) << "Conv2d input channels mismatch";
  int64_t n = x.size(0), h = x.size(2), w = x.size(3);
  ConvGeometry g{in_c_, h, w, kernel_, stride_, pad_};
  int64_t oh = g.OutH(), ow = g.OutW();
  AUTOMC_CHECK(oh > 0 && ow > 0) << "conv output collapsed: " << x.ShapeString();

  int64_t ckk = in_c_ * kernel_ * kernel_;
  int64_t p = oh * ow;
  Tensor wmat = weight_.value.Reshaped({out_c_, ckk});
  Tensor y({n, out_c_, oh, ow});

  cached_ = training;
  if (training) {
    cols_.assign(static_cast<size_t>(n), Tensor());
    x_shape_ = x.shape();
  }
  // Intra-batch data parallelism: one im2col + GEMM per sample, each
  // writing a disjoint slice of y (and of the cols_ cache). With a single
  // sample the loop collapses and the GEMM parallelizes internally instead.
  const float* xd = x.data();
  const float* wd = wmat.data();
  const float* bd = has_bias_ ? bias_.value.data() : nullptr;
  float* yd = y.MutableData();
  int64_t out_c = out_c_, in_c = in_c_;
  automc::ParallelFor(n, 1, [&, xd, wd, bd, yd](int64_t s0, int64_t s1) {
    Tensor cols({ckk, p});  // per-chunk scratch, reused across its samples
    for (int64_t i = s0; i < s1; ++i) {
      tensor::Im2Col(xd + i * in_c * h * w, g, &cols);
      float* dst = yd + i * out_c * p;
      if (bd != nullptr) {
        for (int64_t f = 0; f < out_c; ++f) {
          std::fill(dst + f * p, dst + (f + 1) * p, bd[f]);
        }
      }
      tensor::GemmAccumRaw(wd, cols.data(), dst, out_c, ckk, p);
      if (cached_) cols_[static_cast<size_t>(i)] = cols;
    }
  });
  flops_last_ = n * out_c_ * ckk * p;
  return y;
}

Tensor Conv2d::Backward(const Tensor& grad_out) {
  AUTOMC_CHECK(cached_) << "Conv2d::Backward without training Forward";
  int64_t n = x_shape_[0], h = x_shape_[2], w = x_shape_[3];
  ConvGeometry g{in_c_, h, w, kernel_, stride_, pad_};
  int64_t oh = g.OutH(), ow = g.OutW();
  AUTOMC_CHECK_EQ(grad_out.size(0), n);
  AUTOMC_CHECK_EQ(grad_out.size(1), out_c_);

  int64_t ckk = in_c_ * kernel_ * kernel_;
  int64_t p = oh * ow;
  Tensor wmat = weight_.value.Reshaped({out_c_, ckk});
  Tensor dx(x_shape_);

  // Per-sample parallel backward. dx slices are disjoint; the shared dW and
  // db gradients go through per-sample partials that are reduced in sample
  // order below, so the reduction order is independent of the thread count.
  int64_t chunks = automc::ThreadPool::NumChunks(n, 1);
  std::vector<Tensor> dw_part(static_cast<size_t>(chunks));
  std::vector<Tensor> db_part(static_cast<size_t>(chunks));
  const float* gd = grad_out.data();
  const float* wd = wmat.data();
  float* dxd = dx.MutableData();
  int64_t out_c = out_c_, in_c = in_c_;
  bool has_bias = has_bias_;
  automc::ParallelFor(n, 1, [&, gd, wd, dxd](int64_t s0, int64_t s1,
                                             int64_t chunk) {
    Tensor dwp({out_c, ckk});
    Tensor dbp({has_bias ? out_c : 0});
    Tensor dcols({ckk, p});
    for (int64_t i = s0; i < s1; ++i) {
      const float* dyi = gd + i * out_c * p;  // [out_c, p] slice
      const Tensor& cols = cols_[static_cast<size_t>(i)];
      // dW += dY * cols^T
      tensor::GemmTransposeBRaw(dyi, cols.data(), dwp.MutableData(), out_c,
                                p, ckk);
      // dcols = W^T * dY
      dcols.Fill(0.0f);
      tensor::GemmTransposeARaw(wd, dyi, dcols.MutableData(), ckk, out_c, p);
      tensor::Col2Im(dcols, g, dxd + i * in_c * h * w);
      if (has_bias) {
        for (int64_t f = 0; f < out_c; ++f) {
          double s = 0.0;
          for (int64_t q = 0; q < p; ++q) s += dyi[f * p + q];
          dbp[f] += static_cast<float>(s);
        }
      }
    }
    dw_part[static_cast<size_t>(chunk)] = std::move(dwp);
    db_part[static_cast<size_t>(chunk)] = std::move(dbp);
  });
  // Ordered reduction (ascending sample index), bit-identical for any
  // thread count.
  Tensor dwmat({out_c_, ckk});
  for (const Tensor& part : dw_part) dwmat.AddInPlace(part);
  weight_.grad.AddInPlace(dwmat.Reshaped(weight_.value.shape()));
  if (has_bias_) {
    for (const Tensor& part : db_part) bias_.grad.AddInPlace(part);
  }
  cached_ = false;
  cols_.clear();
  return dx;
}

std::vector<Param*> Conv2d::Params() {
  std::vector<Param*> out = {&weight_};
  if (has_bias_) out.push_back(&bias_);
  return out;
}

std::unique_ptr<Layer> Conv2d::Clone() const {
  // rng == nullptr skips weight init (zero-page alias); the assignments
  // below re-alias this layer's buffers, so the whole clone is O(1).
  auto copy = std::make_unique<Conv2d>(in_c_, out_c_, kernel_, stride_, pad_,
                                       has_bias_, nullptr);
  copy->weight_.value = weight_.value;
  copy->weight_.grad = Tensor::Zeros(weight_.value.shape());
  if (has_bias_) {
    copy->bias_.value = bias_.value;
    copy->bias_.grad = Tensor::Zeros(bias_.value.shape());
  }
  return copy;
}

void Conv2d::KeepOutputFilters(const std::vector<int64_t>& keep) {
  AUTOMC_CHECK(!keep.empty());
  Tensor nw({static_cast<int64_t>(keep.size()), in_c_, kernel_, kernel_});
  float* nwd = nw.MutableData();
  for (size_t i = 0; i < keep.size(); ++i) {
    int64_t f = keep[i];
    AUTOMC_CHECK(f >= 0 && f < out_c_);
    const float* src = weight_.value.data() + f * in_c_ * kernel_ * kernel_;
    float* dst = nwd + static_cast<int64_t>(i) * in_c_ * kernel_ * kernel_;
    std::copy(src, src + in_c_ * kernel_ * kernel_, dst);
  }
  if (has_bias_) {
    Tensor nb({static_cast<int64_t>(keep.size())});
    for (size_t i = 0; i < keep.size(); ++i) nb[static_cast<int64_t>(i)] = bias_.value[keep[i]];
    bias_ = Param(std::move(nb));
  }
  out_c_ = static_cast<int64_t>(keep.size());
  weight_ = Param(std::move(nw));
  cached_ = false;
  cols_.clear();
}

void Conv2d::KeepInputChannels(const std::vector<int64_t>& keep) {
  AUTOMC_CHECK(!keep.empty());
  int64_t kk = kernel_ * kernel_;
  Tensor nw({out_c_, static_cast<int64_t>(keep.size()), kernel_, kernel_});
  float* nwd = nw.MutableData();
  for (int64_t f = 0; f < out_c_; ++f) {
    for (size_t i = 0; i < keep.size(); ++i) {
      int64_t c = keep[i];
      AUTOMC_CHECK(c >= 0 && c < in_c_);
      const float* src = weight_.value.data() + (f * in_c_ + c) * kk;
      float* dst =
          nwd + (f * static_cast<int64_t>(keep.size()) + static_cast<int64_t>(i)) * kk;
      std::copy(src, src + kk, dst);
    }
  }
  in_c_ = static_cast<int64_t>(keep.size());
  weight_ = Param(std::move(nw));
  cached_ = false;
  cols_.clear();
}

// ---------------------------------------------------------------------------
// Linear

Linear::Linear(int64_t in, int64_t out, Rng* rng)
    : in_(in),
      out_(out),
      weight_(rng != nullptr ? Tensor::KaimingNormal({out, in}, in, rng)
                             : Tensor::Zeros({out, in})),
      bias_(Tensor::Zeros({out})) {
  AUTOMC_CHECK_GT(in, 0);
  AUTOMC_CHECK_GT(out, 0);
}

Tensor Linear::Forward(const Tensor& x, bool training) {
  AUTOMC_CHECK_EQ(x.dim(), 2);
  AUTOMC_CHECK_EQ(x.size(1), in_);
  if (training) x_cache_ = x;
  Tensor y = tensor::MatMulTransposeB(x, weight_.value);  // [N, out]
  for (int64_t i = 0; i < y.size(0); ++i) {
    for (int64_t j = 0; j < out_; ++j) y.at(i, j) += bias_.value[j];
  }
  flops_last_ = x.size(0) * in_ * out_;
  return y;
}

Tensor Linear::Backward(const Tensor& grad_out) {
  AUTOMC_CHECK(!x_cache_.empty()) << "Linear::Backward without Forward";
  // dW = dy^T x ; dx = dy W ; db = colsum(dy)
  Tensor dw = tensor::MatMulTransposeA(grad_out, x_cache_);
  weight_.grad.AddInPlace(dw);
  for (int64_t i = 0; i < grad_out.size(0); ++i) {
    for (int64_t j = 0; j < out_; ++j) bias_.grad[j] += grad_out.at(i, j);
  }
  Tensor dx = tensor::MatMul(grad_out, weight_.value);
  x_cache_ = Tensor();
  return dx;
}

std::vector<Param*> Linear::Params() { return {&weight_, &bias_}; }

std::unique_ptr<Layer> Linear::Clone() const {
  auto copy = std::make_unique<Linear>(in_, out_, nullptr);
  copy->weight_.value = weight_.value;
  copy->weight_.grad = Tensor::Zeros(weight_.value.shape());
  copy->bias_.value = bias_.value;
  copy->bias_.grad = Tensor::Zeros(bias_.value.shape());
  return copy;
}

void Linear::KeepInputFeatures(const std::vector<int64_t>& keep_channels,
                               int64_t group) {
  AUTOMC_CHECK(!keep_channels.empty());
  AUTOMC_CHECK_GT(group, 0);
  int64_t new_in = static_cast<int64_t>(keep_channels.size()) * group;
  Tensor nw({out_, new_in});
  for (int64_t o = 0; o < out_; ++o) {
    int64_t dst = 0;
    for (int64_t c : keep_channels) {
      AUTOMC_CHECK((c + 1) * group <= in_);
      for (int64_t g = 0; g < group; ++g, ++dst) {
        nw.at(o, dst) = weight_.value.at(o, c * group + g);
      }
    }
  }
  in_ = new_in;
  weight_ = Param(std::move(nw));
}

// ---------------------------------------------------------------------------
// BatchNorm2d

BatchNorm2d::BatchNorm2d(int64_t channels)
    : channels_(channels),
      gamma_(Tensor::Full({channels}, 1.0f)),
      beta_(Tensor::Zeros({channels})),
      running_mean_(Tensor::Zeros({channels})),
      running_var_(Tensor::Full({channels}, 1.0f)) {
  AUTOMC_CHECK_GT(channels, 0);
}

Tensor BatchNorm2d::Forward(const Tensor& x, bool training) {
  AUTOMC_CHECK_EQ(x.dim(), 4);
  AUTOMC_CHECK_EQ(x.size(1), channels_);
  int64_t n = x.size(0), h = x.size(2), w = x.size(3);
  int64_t hw = h * w;
  Tensor y(x.shape());

  // Channels are independent, so both modes parallelize per channel:
  // batch statistics, running-stat updates, and the normalized outputs for
  // channel c touch only channel-c slices. Per-channel arithmetic order is
  // unchanged, so results are bit-identical for any thread count. All
  // tensor accesses are hoisted to raw pointers before the parallel
  // region: COW materialization must happen exactly once on this thread,
  // never concurrently inside the lambda.
  const float* xd = x.data();
  float* yd = y.MutableData();
  const float* gv = gamma_.value.data();
  const float* bv = beta_.value.data();
  if (training) {
    x_shape_ = x.shape();
    x_hat_ = Tensor(x.shape());
    batch_inv_std_ = Tensor({channels_});
    float* xhd = x_hat_.MutableData();
    float* bis = batch_inv_std_.MutableData();
    float* rm = running_mean_.MutableData();
    float* rv = running_var_.MutableData();
    int64_t m = n * hw;
    int64_t channels = channels_;
    float momentum = momentum_, eps = eps_;
    automc::ParallelFor(
        channels_, ChannelGrain(channels_, 4 * m),
        [=](int64_t c0, int64_t c1) {
          for (int64_t c = c0; c < c1; ++c) {
            double mean = 0.0;
            for (int64_t i = 0; i < n; ++i) {
              const float* p = xd + (i * channels + c) * hw;
              for (int64_t k = 0; k < hw; ++k) mean += p[k];
            }
            mean /= m;
            double var = 0.0;
            for (int64_t i = 0; i < n; ++i) {
              const float* p = xd + (i * channels + c) * hw;
              for (int64_t k = 0; k < hw; ++k) {
                double d = p[k] - mean;
                var += d * d;
              }
            }
            var /= m;
            float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps);
            bis[c] = inv_std;
            rm[c] = (1 - momentum) * rm[c] +
                    momentum * static_cast<float>(mean);
            rv[c] = (1 - momentum) * rv[c] +
                    momentum * static_cast<float>(var);
            float g = gv[c], b = bv[c];
            for (int64_t i = 0; i < n; ++i) {
              const float* p = xd + (i * channels + c) * hw;
              float* xh = xhd + (i * channels + c) * hw;
              float* py = yd + (i * channels + c) * hw;
              for (int64_t k = 0; k < hw; ++k) {
                xh[k] = (p[k] - static_cast<float>(mean)) * inv_std;
                py[k] = g * xh[k] + b;
              }
            }
          }
        });
    trained_forward_ = true;
  } else {
    const float* rm = running_mean_.data();
    const float* rv = running_var_.data();
    int64_t channels = channels_;
    float eps = eps_;
    automc::ParallelFor(
        channels_, ChannelGrain(channels_, 2 * n * hw),
        [=](int64_t c0, int64_t c1) {
          for (int64_t c = c0; c < c1; ++c) {
            float inv_std = 1.0f / std::sqrt(rv[c] + eps);
            float g = gv[c], b = bv[c], mu = rm[c];
            for (int64_t i = 0; i < n; ++i) {
              const float* p = xd + (i * channels + c) * hw;
              float* py = yd + (i * channels + c) * hw;
              for (int64_t k = 0; k < hw; ++k) {
                py[k] = g * (p[k] - mu) * inv_std + b;
              }
            }
          }
        });
    trained_forward_ = false;
  }
  return y;
}

Tensor BatchNorm2d::Backward(const Tensor& grad_out) {
  AUTOMC_CHECK(trained_forward_) << "BatchNorm2d::Backward without training Forward";
  int64_t n = x_shape_[0], h = x_shape_[2], w = x_shape_[3];
  int64_t hw = h * w;
  int64_t m = n * hw;
  Tensor dx(x_shape_);
  // Parallel per channel: gamma/beta grads and dx for channel c depend only
  // on channel-c slices, so writes are disjoint and per-channel order is the
  // serial order. Pointers are hoisted (materializing the shared gradients
  // once, here) so the lambda never touches a Tensor member.
  const float* gd = grad_out.data();
  const float* xhd = x_hat_.data();
  const float* gv = gamma_.value.data();
  const float* bis = batch_inv_std_.data();
  float* gg = gamma_.grad.MutableData();
  float* bg = beta_.grad.MutableData();
  float* dxd = dx.MutableData();
  int64_t channels = channels_;
  automc::ParallelFor(
      channels_, ChannelGrain(channels_, 5 * m),
      [=](int64_t c0, int64_t c1) {
        for (int64_t c = c0; c < c1; ++c) {
          double sum_dy = 0.0, sum_dy_xhat = 0.0;
          for (int64_t i = 0; i < n; ++i) {
            const float* dy = gd + (i * channels + c) * hw;
            const float* xh = xhd + (i * channels + c) * hw;
            for (int64_t k = 0; k < hw; ++k) {
              sum_dy += dy[k];
              sum_dy_xhat += static_cast<double>(dy[k]) * xh[k];
            }
          }
          gg[c] += static_cast<float>(sum_dy_xhat);
          bg[c] += static_cast<float>(sum_dy);
          float g = gv[c];
          float inv_std = bis[c];
          float coef = g * inv_std / static_cast<float>(m);
          for (int64_t i = 0; i < n; ++i) {
            const float* dy = gd + (i * channels + c) * hw;
            const float* xh = xhd + (i * channels + c) * hw;
            float* pdx = dxd + (i * channels + c) * hw;
            for (int64_t k = 0; k < hw; ++k) {
              pdx[k] = coef * (static_cast<float>(m) * dy[k] -
                               static_cast<float>(sum_dy) -
                               xh[k] * static_cast<float>(sum_dy_xhat));
            }
          }
        }
      });
  trained_forward_ = false;
  x_hat_ = Tensor();
  return dx;
}

std::vector<Param*> BatchNorm2d::Params() { return {&gamma_, &beta_}; }

std::unique_ptr<Layer> BatchNorm2d::Clone() const {
  auto copy = std::make_unique<BatchNorm2d>(channels_);
  copy->gamma_.value = gamma_.value;
  copy->beta_.value = beta_.value;
  copy->running_mean_ = running_mean_;
  copy->running_var_ = running_var_;
  return copy;
}

void BatchNorm2d::KeepChannels(const std::vector<int64_t>& keep) {
  AUTOMC_CHECK(!keep.empty());
  int64_t nc = static_cast<int64_t>(keep.size());
  Tensor g({nc}), b({nc}), rm({nc}), rv({nc});
  for (int64_t i = 0; i < nc; ++i) {
    int64_t c = keep[static_cast<size_t>(i)];
    AUTOMC_CHECK(c >= 0 && c < channels_);
    g[i] = gamma_.value[c];
    b[i] = beta_.value[c];
    rm[i] = running_mean_[c];
    rv[i] = running_var_[c];
  }
  channels_ = nc;
  gamma_ = Param(std::move(g));
  beta_ = Param(std::move(b));
  running_mean_ = std::move(rm);
  running_var_ = std::move(rv);
  trained_forward_ = false;
}

// ---------------------------------------------------------------------------
// ReLU

Tensor ReLU::Forward(const Tensor& x, bool training) {
  Tensor y(x.shape());
  if (training) mask_ = Tensor(x.shape());
  const float* src = x.data();
  float* dst = y.MutableData();
  float* mask = training ? mask_.MutableData() : nullptr;
  automc::ParallelFor(x.numel(), kElemwiseGrain, [=](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      bool pos = src[i] > 0.0f;
      dst[i] = pos ? src[i] : 0.0f;
      if (mask != nullptr) mask[i] = pos ? 1.0f : 0.0f;
    }
  });
  return y;
}

Tensor ReLU::Backward(const Tensor& grad_out) {
  AUTOMC_CHECK(!mask_.empty()) << "ReLU::Backward without training Forward";
  Tensor dx(grad_out.shape());
  const float* g = grad_out.data();
  const float* mask = mask_.data();
  float* dst = dx.MutableData();
  automc::ParallelFor(dx.numel(), kElemwiseGrain, [=](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) dst[i] = g[i] * mask[i];
  });
  mask_ = Tensor();
  return dx;
}

// ---------------------------------------------------------------------------
// LMAActivation

LMAActivation::LMAActivation(int64_t segments, float bound)
    : segments_(segments),
      bound_(bound),
      width_(2.0f * bound / static_cast<float>(segments)),
      slopes_(Tensor::Zeros({segments})),
      offset_(Tensor::Zeros({1})) {
  AUTOMC_CHECK_GE(segments, 2);
  // Initialize to a ReLU-like shape: zero slope left of 0, unit slope right.
  for (int64_t s = 0; s < segments_; ++s) {
    float left = SegmentLeft(s);
    slopes_.value[s] = (left >= -1e-6f) ? 1.0f : 0.0f;
  }
}

int64_t LMAActivation::SegmentOf(float x) const {
  // NaN inputs (diverged upstream training) must not index out of bounds;
  // all comparisons with NaN are false, so handle it first.
  if (std::isnan(x)) return 0;
  if (x <= -bound_) return 0;
  if (x >= bound_) return segments_ - 1;
  int64_t s = static_cast<int64_t>((x + bound_) / width_);
  return std::clamp<int64_t>(s, 0, segments_ - 1);
}

float LMAActivation::SegmentLeft(int64_t seg) const {
  return -bound_ + static_cast<float>(seg) * width_;
}

float LMAActivation::Eval(float x, int64_t seg) const {
  float v = offset_.value[0];
  for (int64_t j = 0; j < seg; ++j) v += slopes_.value[j] * width_;
  v += slopes_.value[seg] * (x - SegmentLeft(seg));
  return v;
}

Tensor LMAActivation::Forward(const Tensor& x, bool training) {
  if (training) x_cache_ = x;
  Tensor y(x.shape());
  // Forward reads only the (shared, immutable here) slope/offset params, so
  // elementwise chunks are independent. Backward stays serial: every element
  // accumulates into the same slope/offset gradients.
  const float* src = x.data();
  float* dst = y.MutableData();
  automc::ParallelFor(x.numel(), kElemwiseGrain, [&, src, dst](int64_t b,
                                                               int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      dst[i] = Eval(src[i], SegmentOf(src[i]));
    }
  });
  return y;
}

Tensor LMAActivation::Backward(const Tensor& grad_out) {
  AUTOMC_CHECK(!x_cache_.empty()) << "LMA::Backward without training Forward";
  Tensor dx(grad_out.shape());
  for (int64_t i = 0; i < grad_out.numel(); ++i) {
    float x = x_cache_[i];
    float g = grad_out[i];
    int64_t seg = SegmentOf(x);
    dx[i] = g * slopes_.value[seg];
    // d/dslope_j: width for j < seg, (x - left) for j == seg.
    for (int64_t j = 0; j < seg; ++j) slopes_.grad[j] += g * width_;
    slopes_.grad[seg] += g * (x - SegmentLeft(seg));
    offset_.grad[0] += g;
  }
  x_cache_ = Tensor();
  return dx;
}

std::vector<Param*> LMAActivation::Params() { return {&slopes_, &offset_}; }

std::unique_ptr<Layer> LMAActivation::Clone() const {
  auto copy = std::make_unique<LMAActivation>(segments_, bound_);
  copy->slopes_.value = slopes_.value;
  copy->offset_.value = offset_.value;
  return copy;
}

// ---------------------------------------------------------------------------
// MaxPool2d

MaxPool2d::MaxPool2d(int64_t kernel, int64_t stride)
    : kernel_(kernel), stride_(stride) {
  AUTOMC_CHECK_GT(kernel, 0);
  AUTOMC_CHECK_GT(stride, 0);
}

Tensor MaxPool2d::Forward(const Tensor& x, bool training) {
  AUTOMC_CHECK_EQ(x.dim(), 4);
  int64_t n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
  int64_t oh = (h - kernel_) / stride_ + 1;
  int64_t ow = (w - kernel_) / stride_ + 1;
  AUTOMC_CHECK(oh > 0 && ow > 0);
  Tensor y({n, c, oh, ow});
  if (training) {
    x_shape_ = x.shape();
    argmax_.assign(static_cast<size_t>(n * c * oh * ow), 0);
  }
  // Parallel over (sample, channel) maps; each map writes a disjoint
  // [oh, ow] output slice at a base index computed from the map id, so no
  // running counter crosses chunk boundaries.
  int64_t per_map = oh * ow;
  const float* xd = x.data();
  float* yd = y.MutableData();
  int64_t* am = training ? argmax_.data() : nullptr;
  int64_t kernel = kernel_, stride = stride_;
  automc::ParallelFor(
      n * c, ChannelGrain(n * c, per_map * kernel * kernel),
      [=](int64_t m0, int64_t m1) {
        for (int64_t map = m0; map < m1; ++map) {
          const float* xp = xd + map * h * w;
          int64_t out_idx = map * per_map;
          for (int64_t oi = 0; oi < oh; ++oi) {
            for (int64_t oj = 0; oj < ow; ++oj, ++out_idx) {
              float best = -std::numeric_limits<float>::infinity();
              int64_t best_idx = 0;
              for (int64_t ki = 0; ki < kernel; ++ki) {
                for (int64_t kj = 0; kj < kernel; ++kj) {
                  int64_t si = oi * stride + ki, sj = oj * stride + kj;
                  float v = xp[si * w + sj];
                  if (v > best) {
                    best = v;
                    best_idx = si * w + sj;
                  }
                }
              }
              yd[out_idx] = best;
              if (am != nullptr) am[out_idx] = best_idx;
            }
          }
        }
      });
  return y;
}

Tensor MaxPool2d::Backward(const Tensor& grad_out) {
  AUTOMC_CHECK(!argmax_.empty()) << "MaxPool2d::Backward without Forward";
  int64_t n = x_shape_[0], c = x_shape_[1], h = x_shape_[2], w = x_shape_[3];
  Tensor dx(x_shape_);
  int64_t per_map = grad_out.size(2) * grad_out.size(3);
  // Each (sample, channel) map scatters only into its own [h, w] slice of
  // dx, so maps are independent.
  const float* gd = grad_out.data();
  const int64_t* am = argmax_.data();
  float* dxd = dx.MutableData();
  automc::ParallelFor(
      n * c, ChannelGrain(n * c, per_map),
      [=](int64_t m0, int64_t m1) {
        for (int64_t map = m0; map < m1; ++map) {
          float* dxp = dxd + map * h * w;
          const float* gp = gd + map * per_map;
          const int64_t* ap = am + map * per_map;
          for (int64_t p = 0; p < per_map; ++p) dxp[ap[p]] += gp[p];
        }
      });
  argmax_.clear();
  return dx;
}

// ---------------------------------------------------------------------------
// GlobalAvgPool

Tensor GlobalAvgPool::Forward(const Tensor& x, bool training) {
  AUTOMC_CHECK_EQ(x.dim(), 4);
  int64_t n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
  if (training) x_shape_ = x.shape();
  Tensor y({n, c, 1, 1});
  float inv = 1.0f / static_cast<float>(h * w);
  const float* xd = x.data();
  float* yd = y.MutableData();
  int64_t hw = h * w;
  automc::ParallelFor(n * c, ChannelGrain(n * c, hw),
                      [=](int64_t m0, int64_t m1) {
                        for (int64_t map = m0; map < m1; ++map) {
                          const float* p = xd + map * hw;
                          double s = 0.0;
                          for (int64_t k = 0; k < hw; ++k) s += p[k];
                          yd[map] = static_cast<float>(s) * inv;
                        }
                      });
  return y;
}

Tensor GlobalAvgPool::Backward(const Tensor& grad_out) {
  AUTOMC_CHECK(!x_shape_.empty()) << "GlobalAvgPool::Backward without Forward";
  int64_t n = x_shape_[0], c = x_shape_[1], h = x_shape_[2], w = x_shape_[3];
  Tensor dx(x_shape_);
  float inv = 1.0f / static_cast<float>(h * w);
  const float* gd = grad_out.data();
  float* dxd = dx.MutableData();
  int64_t hw = h * w;
  automc::ParallelFor(n * c, ChannelGrain(n * c, hw),
                      [=](int64_t m0, int64_t m1) {
                        for (int64_t map = m0; map < m1; ++map) {
                          float g = gd[map] * inv;
                          float* p = dxd + map * hw;
                          for (int64_t k = 0; k < hw; ++k) p[k] = g;
                        }
                      });
  x_shape_.clear();
  return dx;
}

// ---------------------------------------------------------------------------
// Flatten

Tensor Flatten::Forward(const Tensor& x, bool training) {
  if (training) x_shape_ = x.shape();
  int64_t n = x.size(0);
  return x.Reshaped({n, x.numel() / n});
}

Tensor Flatten::Backward(const Tensor& grad_out) {
  AUTOMC_CHECK(!x_shape_.empty()) << "Flatten::Backward without Forward";
  Tensor dx = grad_out.Reshaped(x_shape_);
  x_shape_.clear();
  return dx;
}

// ---------------------------------------------------------------------------
// Sequential

std::unique_ptr<Layer> Sequential::ReplaceChild(int64_t i,
                                                std::unique_ptr<Layer> layer) {
  AUTOMC_CHECK(i >= 0 && i < NumChildren());
  std::unique_ptr<Layer> old = std::move(children_[static_cast<size_t>(i)]);
  children_[static_cast<size_t>(i)] = std::move(layer);
  return old;
}

Tensor Sequential::Forward(const Tensor& x, bool training) {
  Tensor h = x;
  for (auto& child : children_) h = child->Forward(h, training);
  return h;
}

Tensor Sequential::Backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = children_.rbegin(); it != children_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

std::vector<Param*> Sequential::Params() {
  std::vector<Param*> out;
  for (auto& child : children_) {
    for (Param* p : child->Params()) out.push_back(p);
  }
  return out;
}

std::unique_ptr<Layer> Sequential::Clone() const {
  auto copy = std::make_unique<Sequential>();
  for (const auto& child : children_) copy->Add(child->Clone());
  return copy;
}

int64_t Sequential::FlopsLastForward() const {
  int64_t total = 0;
  for (const auto& child : children_) total += child->FlopsLastForward();
  return total;
}

}  // namespace nn
}  // namespace automc
