#include "nn/loss.h"

#include <cmath>

#include "tensor/ops.h"

namespace automc {
namespace nn {

using tensor::Tensor;

namespace {

// Row-wise softmax of [n, c] logits.
Tensor Softmax(const Tensor& logits) {
  Tensor lsm = tensor::LogSoftmax(logits);
  Tensor p(lsm.shape());
  for (int64_t i = 0; i < p.numel(); ++i) p[i] = std::exp(lsm[i]);
  return p;
}

void CheckLabels(const Tensor& logits, const std::vector<int>& labels) {
  AUTOMC_CHECK_EQ(logits.dim(), 2);
  AUTOMC_CHECK_EQ(logits.size(0), static_cast<int64_t>(labels.size()));
  for (int y : labels) {
    AUTOMC_CHECK(y >= 0 && y < logits.size(1)) << "label out of range: " << y;
  }
}

}  // namespace

LossResult CrossEntropy(const Tensor& logits, const std::vector<int>& labels) {
  CheckLabels(logits, labels);
  int64_t n = logits.size(0), c = logits.size(1);
  Tensor lsm = tensor::LogSoftmax(logits);
  LossResult out;
  out.grad = Tensor({n, c});
  double loss = 0.0;
  float inv_n = 1.0f / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    int y = labels[static_cast<size_t>(i)];
    loss -= lsm.at(i, y);
    for (int64_t j = 0; j < c; ++j) {
      float p = std::exp(lsm.at(i, j));
      out.grad.at(i, j) = (p - (j == y ? 1.0f : 0.0f)) * inv_n;
    }
  }
  out.loss = static_cast<float>(loss / n);
  return out;
}

LossResult NegativeLikelihood(const Tensor& logits,
                              const std::vector<int>& labels) {
  CheckLabels(logits, labels);
  int64_t n = logits.size(0), c = logits.size(1);
  Tensor p = Softmax(logits);
  LossResult out;
  out.grad = Tensor({n, c});
  double loss = 0.0;
  float inv_n = 1.0f / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    int y = labels[static_cast<size_t>(i)];
    float py = p.at(i, y);
    loss -= py;
    // d(-p_y)/ds_j = -p_y * (1{j==y} - p_j)
    for (int64_t j = 0; j < c; ++j) {
      out.grad.at(i, j) =
          -py * ((j == y ? 1.0f : 0.0f) - p.at(i, j)) * inv_n;
    }
  }
  out.loss = static_cast<float>(loss / n);
  return out;
}

LossResult SoftmaxMse(const Tensor& logits, const std::vector<int>& labels) {
  CheckLabels(logits, labels);
  int64_t n = logits.size(0), c = logits.size(1);
  Tensor p = Softmax(logits);
  LossResult out;
  out.grad = Tensor({n, c});
  double loss = 0.0;
  float scale = 1.0f / static_cast<float>(n * c);
  for (int64_t i = 0; i < n; ++i) {
    int y = labels[static_cast<size_t>(i)];
    // residuals r_j = p_j - onehot_j; dL/ds_k = 2*scale * sum_j r_j p_j (1{j==k} - p_k)
    double dot_rp = 0.0;  // sum_j r_j * p_j
    for (int64_t j = 0; j < c; ++j) {
      float r = p.at(i, j) - (j == y ? 1.0f : 0.0f);
      loss += static_cast<double>(r) * r;
      dot_rp += static_cast<double>(r) * p.at(i, j);
    }
    for (int64_t k = 0; k < c; ++k) {
      float r_k = p.at(i, k) - (k == y ? 1.0f : 0.0f);
      out.grad.at(i, k) = 2.0f * scale * p.at(i, k) *
                          (r_k - static_cast<float>(dot_rp));
    }
  }
  out.loss = static_cast<float>(loss) * scale;
  return out;
}

LossResult Mse(const Tensor& pred, const Tensor& target) {
  AUTOMC_CHECK_EQ(pred.numel(), target.numel());
  LossResult out;
  out.grad = Tensor(pred.shape());
  double loss = 0.0;
  float scale = 1.0f / static_cast<float>(pred.numel());
  for (int64_t i = 0; i < pred.numel(); ++i) {
    float r = pred[i] - target[i];
    loss += static_cast<double>(r) * r;
    out.grad[i] = 2.0f * r * scale;
  }
  out.loss = static_cast<float>(loss) * scale;
  return out;
}

LossResult DistillationKl(const Tensor& student_logits,
                          const Tensor& teacher_logits, float temperature) {
  AUTOMC_CHECK_EQ(student_logits.numel(), teacher_logits.numel());
  AUTOMC_CHECK_GT(temperature, 0.0f);
  int64_t n = student_logits.size(0), c = student_logits.size(1);
  float t = temperature;

  Tensor s_scaled({n, c}), t_scaled({n, c});
  for (int64_t i = 0; i < n * c; ++i) {
    s_scaled[i] = student_logits[i] / t;
    t_scaled[i] = teacher_logits[i] / t;
  }
  Tensor ls = tensor::LogSoftmax(s_scaled);
  Tensor lt = tensor::LogSoftmax(t_scaled);

  LossResult out;
  out.grad = Tensor({n, c});
  double loss = 0.0;
  float inv_n = 1.0f / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < c; ++j) {
      float q = std::exp(lt.at(i, j));  // teacher prob
      float p = std::exp(ls.at(i, j));  // student prob
      loss += static_cast<double>(q) * (lt.at(i, j) - ls.at(i, j));
      // d[T^2 * KL]/ds = T * (p - q) / n
      out.grad.at(i, j) = t * (p - q) * inv_n;
    }
  }
  out.loss = static_cast<float>(loss) * t * t * inv_n;
  return out;
}

double Accuracy(const Tensor& logits, const std::vector<int>& labels) {
  AUTOMC_CHECK_EQ(logits.size(0), static_cast<int64_t>(labels.size()));
  int64_t n = logits.size(0), c = logits.size(1);
  int64_t correct = 0;
  for (int64_t i = 0; i < n; ++i) {
    int64_t best = 0;
    for (int64_t j = 1; j < c; ++j) {
      if (logits.at(i, j) > logits.at(i, best)) best = j;
    }
    if (best == labels[static_cast<size_t>(i)]) ++correct;
  }
  return n == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace nn
}  // namespace automc
