#ifndef AUTOMC_NN_SERIALIZE_H_
#define AUTOMC_NN_SERIALIZE_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "common/result.h"
#include "nn/model.h"

namespace automc {
namespace nn {

// Binary model persistence. The format is a tagged recursive encoding of
// the layer tree (including surgery artifacts: LowRankConv composites,
// LMA activations, pruned channel counts), so a compressed model can be
// saved and later reloaded bit-exactly. Format:
//
//   "AMCM" magic | u32 version | ModelSpec | layer tree
//
// Every layer is  u32 tag | type-specific fields | parameter tensors.
// Integers are little-endian fixed width; tensors are shape + raw float32.

Status SerializeModel(Model* model, std::ostream* out);
Result<std::unique_ptr<Model>> DeserializeModel(std::istream* in);

// File convenience wrappers.
Status SaveModel(Model* model, const std::string& path);
Result<std::unique_ptr<Model>> LoadModel(const std::string& path);

}  // namespace nn
}  // namespace automc

#endif  // AUTOMC_NN_SERIALIZE_H_
