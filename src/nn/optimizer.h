#ifndef AUTOMC_NN_OPTIMIZER_H_
#define AUTOMC_NN_OPTIMIZER_H_

#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "nn/layer.h"

namespace automc {
namespace nn {

// Stochastic gradient descent with classical momentum and decoupled L2
// weight decay. State (velocity) is keyed by Param address; create a fresh
// optimizer after any surgery that rebuilds parameters.
class Sgd {
 public:
  Sgd(float lr, float momentum = 0.9f, float weight_decay = 0.0f)
      : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {}

  void Step(const std::vector<Param*>& params);
  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_, momentum_, weight_decay_;
  std::unordered_map<Param*, tensor::Tensor> velocity_;
};

// Adam optimizer; used for the embedding networks (TransR, NN_exp, F_mo)
// following the paper's implementation details (lr = 0.001).
class Adam {
 public:
  explicit Adam(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-8f)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  void Step(const std::vector<Param*>& params);

  // Checkpoint support: serializes/restores the per-parameter moments in
  // `params` order (bit-exact raw floats). The same ordered list must be
  // passed to both calls; parameters without state yet are written as empty
  // and stay lazily initialized after a restore.
  void SaveState(const std::vector<Param*>& params, ByteWriter* w) const;
  bool LoadState(const std::vector<Param*>& params, ByteReader* r);

 private:
  struct State {
    tensor::Tensor m;
    tensor::Tensor v;
    int64_t t = 0;
  };
  float lr_, beta1_, beta2_, eps_;
  std::unordered_map<Param*, State> state_;
};

}  // namespace nn
}  // namespace automc

#endif  // AUTOMC_NN_OPTIMIZER_H_
