#include "nn/lowrank.h"

namespace automc {
namespace nn {

using tensor::Tensor;

LowRankConv::LowRankConv(std::vector<std::unique_ptr<Conv2d>> stages)
    : stages_(std::move(stages)) {
  AUTOMC_CHECK(!stages_.empty());
  for (size_t i = 1; i < stages_.size(); ++i) {
    AUTOMC_CHECK_EQ(stages_[i]->in_channels(), stages_[i - 1]->out_channels());
  }
}

Tensor LowRankConv::Forward(const Tensor& x, bool training) {
  Tensor h = x;
  for (auto& s : stages_) h = s->Forward(h, training);
  return h;
}

Tensor LowRankConv::Backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = stages_.rbegin(); it != stages_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

std::vector<Param*> LowRankConv::Params() {
  std::vector<Param*> out;
  for (auto& s : stages_) {
    for (Param* p : s->Params()) out.push_back(p);
  }
  return out;
}

std::unique_ptr<Layer> LowRankConv::Clone() const {
  std::vector<std::unique_ptr<Conv2d>> stages;
  stages.reserve(stages_.size());
  for (const auto& s : stages_) {
    stages.emplace_back(static_cast<Conv2d*>(s->Clone().release()));
  }
  return std::make_unique<LowRankConv>(std::move(stages));
}

int64_t LowRankConv::FlopsLastForward() const {
  int64_t total = 0;
  for (const auto& s : stages_) total += s->FlopsLastForward();
  return total;
}

}  // namespace nn
}  // namespace automc
