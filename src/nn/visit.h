#ifndef AUTOMC_NN_VISIT_H_
#define AUTOMC_NN_VISIT_H_

#include <functional>

#include "nn/layer.h"

namespace automc {
namespace nn {

// Depth-first traversal over every layer reachable from `root`, including
// container layers themselves (Sequential, ResidualBlock, LowRankConv).
// Used by NS sparsity regularization (find all BatchNorm2d), the compression
// introspectors, and diagnostics.
void VisitLayers(Layer* root, const std::function<void(Layer*)>& fn);

}  // namespace nn
}  // namespace automc

#endif  // AUTOMC_NN_VISIT_H_
