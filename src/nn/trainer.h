#ifndef AUTOMC_NN_TRAINER_H_
#define AUTOMC_NN_TRAINER_H_

#include <functional>

#include "common/status.h"
#include "data/augment.h"
#include "data/dataset.h"
#include "nn/loss.h"
#include "nn/model.h"

namespace automc {
namespace nn {

// Hyperparameters of one training run.
struct TrainConfig {
  int epochs = 1;
  int batch_size = 32;
  float lr = 0.05f;
  // Per-epoch multiplicative learning-rate decay (1 = constant).
  float lr_decay = 1.0f;
  float momentum = 0.9f;
  float weight_decay = 1e-4f;
  // L1 subgradient strength applied to every BatchNorm gamma each step
  // (Network Slimming's sparsity regularizer; 0 disables).
  float bn_gamma_l1 = 0.0f;
  // Per-batch training augmentation (flips/shifts/noise).
  bool augment = false;
  data::AugmentConfig augment_config;
  uint64_t seed = 1;
};

// Computes the training loss and its logits-gradient for one mini-batch.
// `images` is provided so closures can run auxiliary models (e.g. a
// distillation teacher) on the same batch.
using LossFn = std::function<LossResult(
    const tensor::Tensor& logits, const std::vector<int>& labels,
    const tensor::Tensor& images)>;

// Called after each epoch; used by SFP to re-zero soft-pruned filters and by
// diagnostics. `epoch` counts from 0.
using EpochHook = std::function<void(int epoch, Model* model)>;

// Minibatch training driver.
class Trainer {
 public:
  explicit Trainer(TrainConfig config) : config_(config) {}

  // Runs config.epochs of SGD over `train`. A null loss_fn defaults to
  // softmax cross-entropy. Returns the final epoch's mean training loss
  // through *final_loss when non-null.
  Status Fit(Model* model, const data::Dataset& train, LossFn loss_fn = nullptr,
             EpochHook epoch_hook = nullptr, float* final_loss = nullptr);

  // Top-1 accuracy of `model` on `ds` in inference mode.
  static double Evaluate(Model* model, const data::Dataset& ds,
                         int batch_size = 64);

 private:
  TrainConfig config_;
};

}  // namespace nn
}  // namespace automc

#endif  // AUTOMC_NN_TRAINER_H_
