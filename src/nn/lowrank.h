#ifndef AUTOMC_NN_LOWRANK_H_
#define AUTOMC_NN_LOWRANK_H_

#include <memory>
#include <vector>

#include "nn/layers.h"

namespace automc {
namespace nn {

// A convolution decomposed into a pipeline of smaller convolutions
// (e.g. the SVD split Cin->r (kxk) then r->Cout (1x1) used by LFB, or the
// Tucker-2 split 1x1 / kxk / 1x1 produced by HOOI in HOS).
//
// It behaves exactly like the conv it replaced (same in/out channels,
// stride, padding) but with fewer parameters; compression surgery swaps it
// into the position of the original Conv2d. It is treated as opaque by
// further pruning passes.
class LowRankConv : public Layer {
 public:
  explicit LowRankConv(std::vector<std::unique_ptr<Conv2d>> stages);

  tensor::Tensor Forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_out) override;
  std::vector<Param*> Params() override;
  std::unique_ptr<Layer> Clone() const override;
  std::string Name() const override { return "LowRankConv"; }
  int64_t FlopsLastForward() const override;

  int64_t num_stages() const { return static_cast<int64_t>(stages_.size()); }
  Conv2d* stage(int64_t i) { return stages_[static_cast<size_t>(i)].get(); }
  int64_t in_channels() const { return stages_.front()->in_channels(); }
  int64_t out_channels() const { return stages_.back()->out_channels(); }

 private:
  std::vector<std::unique_ptr<Conv2d>> stages_;
};

}  // namespace nn
}  // namespace automc

#endif  // AUTOMC_NN_LOWRANK_H_
