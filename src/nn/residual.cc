#include "nn/residual.h"

namespace automc {
namespace nn {

using tensor::Tensor;

ResidualBlock::ResidualBlock(Kind kind, int64_t in_c, int64_t planes,
                             int64_t stride, Rng* rng)
    : kind_(kind), in_c_(in_c), stride_(stride) {
  if (kind == Kind::kBasic) {
    out_c_ = planes;
    conv1_ = std::make_unique<Conv2d>(in_c, planes, 3, stride, 1, false, rng);
    bn1_ = std::make_unique<BatchNorm2d>(planes);
    act1_ = std::make_unique<ReLU>();
    conv2_ = std::make_unique<Conv2d>(planes, planes, 3, 1, 1, false, rng);
    bn2_ = std::make_unique<BatchNorm2d>(planes);
    act_out_ = std::make_unique<ReLU>();
  } else {
    out_c_ = planes * kBottleneckExpansion;
    conv1_ = std::make_unique<Conv2d>(in_c, planes, 1, 1, 0, false, rng);
    bn1_ = std::make_unique<BatchNorm2d>(planes);
    act1_ = std::make_unique<ReLU>();
    conv2_ = std::make_unique<Conv2d>(planes, planes, 3, stride, 1, false, rng);
    bn2_ = std::make_unique<BatchNorm2d>(planes);
    act2_ = std::make_unique<ReLU>();
    conv3_ = std::make_unique<Conv2d>(planes, out_c_, 1, 1, 0, false, rng);
    bn3_ = std::make_unique<BatchNorm2d>(out_c_);
    act_out_ = std::make_unique<ReLU>();
  }
  if (stride != 1 || in_c != out_c_) {
    downsample_conv_ =
        std::make_unique<Conv2d>(in_c, out_c_, 1, stride, 0, false, rng);
    downsample_bn_ = std::make_unique<BatchNorm2d>(out_c_);
  }
}

Tensor ResidualBlock::Forward(const Tensor& x, bool training) {
  Tensor h = conv1_->Forward(x, training);
  h = bn1_->Forward(h, training);
  h = act1_->Forward(h, training);
  h = conv2_->Forward(h, training);
  h = bn2_->Forward(h, training);
  if (kind_ == Kind::kBottleneck) {
    h = act2_->Forward(h, training);
    h = conv3_->Forward(h, training);
    h = bn3_->Forward(h, training);
  }
  Tensor sc = x;
  if (downsample_conv_) {
    sc = downsample_conv_->Forward(x, training);
    sc = downsample_bn_->Forward(sc, training);
  }
  h.AddInPlace(sc);
  return act_out_->Forward(h, training);
}

Tensor ResidualBlock::Backward(const Tensor& grad_out) {
  Tensor g = act_out_->Backward(grad_out);  // gradient at (main + shortcut)

  Tensor g_main = g;
  if (kind_ == Kind::kBottleneck) {
    g_main = bn3_->Backward(g_main);
    g_main = conv3_->Backward(g_main);
    g_main = act2_->Backward(g_main);
  }
  g_main = bn2_->Backward(g_main);
  g_main = conv2_->Backward(g_main);
  g_main = act1_->Backward(g_main);
  g_main = bn1_->Backward(g_main);
  g_main = conv1_->Backward(g_main);

  if (downsample_conv_) {
    Tensor g_sc = downsample_bn_->Backward(g);
    g_sc = downsample_conv_->Backward(g_sc);
    g_main.AddInPlace(g_sc);
  } else {
    g_main.AddInPlace(g);
  }
  return g_main;
}

std::vector<Param*> ResidualBlock::Params() {
  std::vector<Param*> out;
  auto append = [&out](Layer* l) {
    if (l == nullptr) return;
    for (Param* p : l->Params()) out.push_back(p);
  };
  append(conv1_.get());
  append(bn1_.get());
  append(act1_.get());
  append(conv2_.get());
  append(bn2_.get());
  append(act2_.get());
  append(conv3_.get());
  append(bn3_.get());
  append(act_out_.get());
  append(downsample_conv_.get());
  append(downsample_bn_.get());
  return out;
}

std::unique_ptr<Layer> ResidualBlock::Clone() const {
  auto copy =
      std::unique_ptr<ResidualBlock>(new ResidualBlock(kind_, in_c_, out_c_, stride_));
  auto clone_bn = [](const std::unique_ptr<BatchNorm2d>& bn) {
    std::unique_ptr<BatchNorm2d> out;
    if (bn) {
      out.reset(static_cast<BatchNorm2d*>(bn->Clone().release()));
    }
    return out;
  };
  copy->conv1_ = conv1_ ? conv1_->Clone() : nullptr;
  copy->bn1_ = clone_bn(bn1_);
  copy->act1_ = act1_ ? act1_->Clone() : nullptr;
  copy->conv2_ = conv2_ ? conv2_->Clone() : nullptr;
  copy->bn2_ = clone_bn(bn2_);
  copy->act2_ = act2_ ? act2_->Clone() : nullptr;
  copy->conv3_ = conv3_ ? conv3_->Clone() : nullptr;
  copy->bn3_ = clone_bn(bn3_);
  copy->act_out_ = act_out_ ? act_out_->Clone() : nullptr;
  if (downsample_conv_) {
    copy->downsample_conv_.reset(
        static_cast<Conv2d*>(downsample_conv_->Clone().release()));
    copy->downsample_bn_ = clone_bn(downsample_bn_);
  }
  return copy;
}

int64_t ResidualBlock::FlopsLastForward() const {
  int64_t total = 0;
  auto add = [&total](const Layer* l) {
    if (l) total += l->FlopsLastForward();
  };
  add(conv1_.get());
  add(conv2_.get());
  add(conv3_.get());
  add(downsample_conv_.get());
  return total;
}

void ResidualBlock::ReplaceActivations(const Layer& prototype) {
  act1_ = prototype.Clone();
  if (act2_) act2_ = prototype.Clone();
  act_out_ = prototype.Clone();
}

}  // namespace nn
}  // namespace automc
