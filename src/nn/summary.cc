#include "nn/summary.h"

#include <sstream>

#include "nn/layers.h"
#include "nn/lowrank.h"
#include "nn/residual.h"

namespace automc {
namespace nn {

namespace {

std::string WeightShape(Layer* layer) {
  auto params = layer->Params();
  if (params.empty()) return "-";
  return params.front()->value.ShapeString();
}

// Appends leaf rows for `layer`, recursing into containers.
void Collect(Layer* layer, const std::string& path,
             std::vector<LayerSummary>* rows) {
  if (layer == nullptr) return;
  if (auto* seq = dynamic_cast<Sequential*>(layer)) {
    for (int64_t i = 0; i < seq->NumChildren(); ++i) {
      Collect(seq->Child(i), path + "." + std::to_string(i), rows);
    }
    return;
  }
  if (auto* block = dynamic_cast<ResidualBlock*>(layer)) {
    Collect(block->conv1(), path + ".conv1", rows);
    Collect(block->bn1(), path + ".bn1", rows);
    Collect(block->conv2(), path + ".conv2", rows);
    Collect(block->bn2(), path + ".bn2", rows);
    Collect(block->conv3(), path + ".conv3", rows);
    Collect(block->bn3(), path + ".bn3", rows);
    Collect(block->downsample_conv(), path + ".downsample", rows);
    Collect(block->downsample_bn(), path + ".downsample_bn", rows);
    // Activations may carry parameters (LMA).
    Collect(block->act1(), path + ".act1", rows);
    Collect(block->act2(), path + ".act2", rows);
    Collect(block->act_out(), path + ".act_out", rows);
    return;
  }
  if (auto* lr = dynamic_cast<LowRankConv*>(layer)) {
    for (int64_t i = 0; i < lr->num_stages(); ++i) {
      Collect(lr->stage(i), path + ".stage" + std::to_string(i), rows);
    }
    return;
  }
  LayerSummary row;
  row.path = path;
  row.type = layer->Name();
  row.shape = WeightShape(layer);
  row.params = layer->ParamCount();
  row.flops = layer->FlopsLastForward();
  rows->push_back(std::move(row));
}

}  // namespace

ModelSummary Summarize(Model* model) {
  AUTOMC_CHECK(model != nullptr);
  // Profiling forward pass so FlopsLastForward is populated.
  tensor::Tensor x({1, model->spec().in_channels, model->spec().image_size,
                    model->spec().image_size});
  model->Forward(x, /*training=*/false);

  ModelSummary summary;
  Collect(model->net(), "net", &summary.layers);
  for (const LayerSummary& row : summary.layers) {
    summary.total_params += row.params;
    summary.total_flops += row.flops;
  }
  summary.weight_bits = model->weight_bits();
  return summary;
}

std::string ModelSummary::ToString() const {
  std::ostringstream os;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-28s %-12s %-16s %10s %12s\n", "layer",
                "type", "weights", "params", "flops");
  os << buf;
  for (const LayerSummary& row : layers) {
    std::snprintf(buf, sizeof(buf), "%-28s %-12s %-16s %10lld %12lld\n",
                  row.path.c_str(), row.type.c_str(), row.shape.c_str(),
                  static_cast<long long>(row.params),
                  static_cast<long long>(row.flops));
    os << buf;
  }
  std::snprintf(buf, sizeof(buf),
                "total: %lld params (%d-bit weights), %lld flops/sample\n",
                static_cast<long long>(total_params), weight_bits,
                static_cast<long long>(total_flops));
  os << buf;
  return os.str();
}

}  // namespace nn
}  // namespace automc
