#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"

namespace automc {
namespace tensor {

namespace {

// Minimum multiply-adds one ParallelFor chunk should amortize; below this
// the whole GEMM runs as a single chunk (i.e. serial).
constexpr int64_t kFlopsPerChunk = 1 << 17;

// Rows per chunk so each chunk carries ~kFlopsPerChunk multiply-adds,
// rounded up to a multiple of four so the quad-row register-blocked path
// covers whole chunks. Depends only on the problem shape, never on the
// thread count.
int64_t RowGrain(int64_t m, int64_t flops_per_row) {
  if (flops_per_row <= 0) return m > 0 ? m : 1;
  int64_t rows = kFlopsPerChunk / flops_per_row;
  if (rows < 1) rows = 1;
  rows = (rows + 3) & ~int64_t{3};
  if (rows > m && m > 0) rows = m;
  return rows;
}

}  // namespace

namespace {

// Side of the register tile along n: 4 output rows x kTileN columns of C
// are held in local accumulators across the entire k loop, so C is loaded
// and stored once per tile instead of once per (k, row) step, and B rows
// are shared by four accumulator streams. Every c[i][j] still accumulates
// its products in ascending-k order, so the result is bit-identical to the
// plain row-at-a-time loop regardless of tiling — and, because chunk
// boundaries depend only on (m, grain), identical for every thread count.
constexpr int64_t kTileN = 16;

// One 4-row band of C += A_rows * B where the four A rows are given as
// separate pointers (covers both the row-major and transposed-A layouts:
// the caller chooses how v0..v3 are loaded per k step via `lda`/`stride`).
// `a0..a3` advance by `astep` per k step.
inline void QuadBand(const float* a0, const float* a1, const float* a2,
                     const float* a3, int64_t astep, const float* b,
                     float* c0, float* c1, float* c2, float* c3, int64_t k,
                     int64_t n) {
  int64_t j0 = 0;
  for (; j0 + kTileN <= n; j0 += kTileN) {
    float t0[kTileN], t1[kTileN], t2[kTileN], t3[kTileN];
    for (int64_t j = 0; j < kTileN; ++j) {
      t0[j] = c0[j0 + j];
      t1[j] = c1[j0 + j];
      t2[j] = c2[j0 + j];
      t3[j] = c3[j0 + j];
    }
    const float* p0 = a0;
    const float* p1 = a1;
    const float* p2 = a2;
    const float* p3 = a3;
    for (int64_t kk = 0; kk < k; ++kk) {
      float v0 = *p0, v1 = *p1, v2 = *p2, v3 = *p3;
      p0 += astep;
      p1 += astep;
      p2 += astep;
      p3 += astep;
      const float* __restrict__ brow = b + kk * n + j0;
      for (int64_t j = 0; j < kTileN; ++j) {
        float bv = brow[j];
        t0[j] += v0 * bv;
        t1[j] += v1 * bv;
        t2[j] += v2 * bv;
        t3[j] += v3 * bv;
      }
    }
    for (int64_t j = 0; j < kTileN; ++j) {
      c0[j0 + j] = t0[j];
      c1[j0 + j] = t1[j];
      c2[j0 + j] = t2[j];
      c3[j0 + j] = t3[j];
    }
  }
  for (; j0 < n; ++j0) {
    float t0 = c0[j0], t1 = c1[j0], t2 = c2[j0], t3 = c3[j0];
    const float* p0 = a0;
    const float* p1 = a1;
    const float* p2 = a2;
    const float* p3 = a3;
    for (int64_t kk = 0; kk < k; ++kk) {
      float bv = b[kk * n + j0];
      t0 += *p0 * bv;
      t1 += *p1 * bv;
      t2 += *p2 * bv;
      t3 += *p3 * bv;
      p0 += astep;
      p1 += astep;
      p2 += astep;
      p3 += astep;
    }
    c0[j0] = t0;
    c1[j0] = t1;
    c2[j0] = t2;
    c3[j0] = t3;
  }
}

}  // namespace

void GemmAccumRaw(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n) {
  automc::ParallelFor(m, RowGrain(m, k * n), [=](int64_t r0, int64_t r1) {
    int64_t i = r0;
    for (; i + 4 <= r1; i += 4) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      QuadBand(arow, arow + k, arow + 2 * k, arow + 3 * k, /*astep=*/1, b,
               crow, crow + n, crow + 2 * n, crow + 3 * n, k, n);
    }
    for (; i < r1; ++i) {
      float* __restrict__ crow = c + i * n;
      const float* __restrict__ arow = a + i * k;
      for (int64_t kk = 0; kk < k; ++kk) {
        float av = arow[kk];
        if (av == 0.0f) continue;  // pruned filters are exactly zero
        const float* __restrict__ brow = b + kk * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

void GemmTransposeARaw(const float* a, const float* b, float* c, int64_t m,
                       int64_t k, int64_t n) {
  automc::ParallelFor(m, RowGrain(m, k * n), [=](int64_t r0, int64_t r1) {
    // Same register tile as GemmAccumRaw; A is k x m here, so the four rows
    // of the band start at a[i..i+3] and advance by m per k step.
    int64_t i = r0;
    for (; i + 4 <= r1; i += 4) {
      const float* acol = a + i;
      float* crow = c + i * n;
      QuadBand(acol, acol + 1, acol + 2, acol + 3, /*astep=*/m, b, crow,
               crow + n, crow + 2 * n, crow + 3 * n, k, n);
    }
    for (; i < r1; ++i) {
      float* __restrict__ crow = c + i * n;
      for (int64_t kk = 0; kk < k; ++kk) {
        float av = a[kk * m + i];
        if (av == 0.0f) continue;
        const float* __restrict__ brow = b + kk * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

void GemmTransposeBRaw(const float* a, const float* b, float* c, int64_t m,
                       int64_t k, int64_t n) {
  automc::ParallelFor(m, RowGrain(m, k * n), [=](int64_t r0, int64_t r1) {
    // Process output rows four at a time so each B row is read once per
    // quad instead of once per row. Each dot product still walks k in
    // ascending order with a double accumulator (serial semantics).
    int64_t i = r0;
    for (; i + 4 <= r1; i += 4) {
      const float* a0 = a + i * k;
      const float* a1 = a0 + k;
      const float* a2 = a1 + k;
      const float* a3 = a2 + k;
      float* c0 = c + i * n;
      float* c1 = c0 + n;
      float* c2 = c1 + n;
      float* c3 = c2 + n;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
        for (int64_t kk = 0; kk < k; ++kk) {
          double bv = brow[kk];
          s0 += static_cast<double>(a0[kk]) * bv;
          s1 += static_cast<double>(a1[kk]) * bv;
          s2 += static_cast<double>(a2[kk]) * bv;
          s3 += static_cast<double>(a3[kk]) * bv;
        }
        c0[j] += static_cast<float>(s0);
        c1[j] += static_cast<float>(s1);
        c2[j] += static_cast<float>(s2);
        c3[j] += static_cast<float>(s3);
      }
    }
    for (; i < r1; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        double s = 0.0;
        for (int64_t kk = 0; kk < k; ++kk) {
          s += static_cast<double>(arow[kk]) * brow[kk];
        }
        crow[j] += static_cast<float>(s);
      }
    }
  });
}

void MatMulAccumulate(const Tensor& a, const Tensor& b, Tensor* c) {
  AUTOMC_CHECK_EQ(a.dim(), 2);
  AUTOMC_CHECK_EQ(b.dim(), 2);
  AUTOMC_CHECK_EQ(c->dim(), 2);
  int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  AUTOMC_CHECK_EQ(b.size(0), k);
  AUTOMC_CHECK_EQ(c->size(0), m);
  AUTOMC_CHECK_EQ(c->size(1), n);
  GemmAccumRaw(a.data(), b.data(), c->MutableData(), m, k, n);
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Tensor c({a.size(0), b.size(1)});
  MatMulAccumulate(a, b, &c);
  return c;
}

Tensor MatMulTransposeA(const Tensor& a, const Tensor& b) {
  AUTOMC_CHECK_EQ(a.dim(), 2);
  AUTOMC_CHECK_EQ(b.dim(), 2);
  int64_t k = a.size(0), m = a.size(1), n = b.size(1);
  AUTOMC_CHECK_EQ(b.size(0), k);
  Tensor c({m, n});
  GemmTransposeARaw(a.data(), b.data(), c.MutableData(), m, k, n);
  return c;
}

Tensor MatMulTransposeB(const Tensor& a, const Tensor& b) {
  AUTOMC_CHECK_EQ(a.dim(), 2);
  AUTOMC_CHECK_EQ(b.dim(), 2);
  int64_t m = a.size(0), k = a.size(1), n = b.size(0);
  AUTOMC_CHECK_EQ(b.size(1), k);
  Tensor c({m, n});
  GemmTransposeBRaw(a.data(), b.data(), c.MutableData(), m, k, n);
  return c;
}

void Im2Col(const float* x, const ConvGeometry& g, Tensor* cols) {
  int64_t oh = g.OutH(), ow = g.OutW();
  AUTOMC_CHECK_EQ(cols->dim(), 2);
  AUTOMC_CHECK_EQ(cols->size(0), g.in_c * g.kernel * g.kernel);
  AUTOMC_CHECK_EQ(cols->size(1), oh * ow);
  // Every element (zero padding included) is written below, so a shared
  // cols buffer is replaced, never copied.
  float* out = cols->MutableDataDiscard();
  int64_t col_w = oh * ow;
  for (int64_t c = 0; c < g.in_c; ++c) {
    const float* xc = x + c * g.in_h * g.in_w;
    for (int64_t ki = 0; ki < g.kernel; ++ki) {
      for (int64_t kj = 0; kj < g.kernel; ++kj) {
        float* row =
            out + ((c * g.kernel + ki) * g.kernel + kj) * col_w;
        int64_t idx = 0;
        for (int64_t i = 0; i < oh; ++i) {
          int64_t src_i = i * g.stride + ki - g.pad;
          bool row_ok = src_i >= 0 && src_i < g.in_h;
          for (int64_t j = 0; j < ow; ++j, ++idx) {
            int64_t src_j = j * g.stride + kj - g.pad;
            row[idx] = (row_ok && src_j >= 0 && src_j < g.in_w)
                           ? xc[src_i * g.in_w + src_j]
                           : 0.0f;
          }
        }
      }
    }
  }
}

void Col2Im(const Tensor& cols, const ConvGeometry& g, float* dx) {
  int64_t oh = g.OutH(), ow = g.OutW();
  AUTOMC_CHECK_EQ(cols.dim(), 2);
  AUTOMC_CHECK_EQ(cols.size(0), g.in_c * g.kernel * g.kernel);
  AUTOMC_CHECK_EQ(cols.size(1), oh * ow);
  const float* in = cols.data();
  int64_t col_w = oh * ow;
  for (int64_t c = 0; c < g.in_c; ++c) {
    float* xc = dx + c * g.in_h * g.in_w;
    for (int64_t ki = 0; ki < g.kernel; ++ki) {
      for (int64_t kj = 0; kj < g.kernel; ++kj) {
        const float* row =
            in + ((c * g.kernel + ki) * g.kernel + kj) * col_w;
        int64_t idx = 0;
        for (int64_t i = 0; i < oh; ++i) {
          int64_t src_i = i * g.stride + ki - g.pad;
          bool row_ok = src_i >= 0 && src_i < g.in_h;
          for (int64_t j = 0; j < ow; ++j, ++idx) {
            int64_t src_j = j * g.stride + kj - g.pad;
            if (row_ok && src_j >= 0 && src_j < g.in_w) {
              xc[src_i * g.in_w + src_j] += row[idx];
            }
          }
        }
      }
    }
  }
}

Tensor LogSoftmax(const Tensor& logits) {
  AUTOMC_CHECK_EQ(logits.dim(), 2);
  int64_t n = logits.size(0), c = logits.size(1);
  Tensor out({n, c});
  const float* src = logits.data();
  float* dst = out.MutableData();
  automc::ParallelFor(n, RowGrain(n, 3 * c), [=](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const float* row = src + i * c;
      float* orow = dst + i * c;
      float mx = row[0];
      for (int64_t j = 1; j < c; ++j) mx = std::max(mx, row[j]);
      double sum = 0.0;
      for (int64_t j = 0; j < c; ++j) {
        sum += std::exp(static_cast<double>(row[j]) - mx);
      }
      float lse = mx + static_cast<float>(std::log(sum));
      for (int64_t j = 0; j < c; ++j) orow[j] = row[j] - lse;
    }
  });
  return out;
}

}  // namespace tensor
}  // namespace automc
