#include "tensor/ops.h"

#include <cmath>

namespace automc {
namespace tensor {

void MatMulAccumulate(const Tensor& a, const Tensor& b, Tensor* c) {
  AUTOMC_CHECK_EQ(a.dim(), 2);
  AUTOMC_CHECK_EQ(b.dim(), 2);
  AUTOMC_CHECK_EQ(c->dim(), 2);
  int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  AUTOMC_CHECK_EQ(b.size(0), k);
  AUTOMC_CHECK_EQ(c->size(0), m);
  AUTOMC_CHECK_EQ(c->size(1), n);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c->data();
  // i-k-j loop order keeps both B and C rows contiguous in the inner loop.
  for (int64_t i = 0; i < m; ++i) {
    float* crow = pc + i * n;
    const float* arow = pa + i * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = pb + kk * n;
      for (int64_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Tensor c({a.size(0), b.size(1)});
  MatMulAccumulate(a, b, &c);
  return c;
}

Tensor MatMulTransposeA(const Tensor& a, const Tensor& b) {
  AUTOMC_CHECK_EQ(a.dim(), 2);
  AUTOMC_CHECK_EQ(b.dim(), 2);
  int64_t k = a.size(0), m = a.size(1), n = b.size(1);
  AUTOMC_CHECK_EQ(b.size(0), k);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (int64_t i = 0; i < m; ++i) {
      float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = pc + i * n;
      for (int64_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
  return c;
}

Tensor MatMulTransposeB(const Tensor& a, const Tensor& b) {
  AUTOMC_CHECK_EQ(a.dim(), 2);
  AUTOMC_CHECK_EQ(b.dim(), 2);
  int64_t m = a.size(0), k = a.size(1), n = b.size(0);
  AUTOMC_CHECK_EQ(b.size(1), k);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      double s = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) s += static_cast<double>(arow[kk]) * brow[kk];
      crow[j] = static_cast<float>(s);
    }
  }
  return c;
}

void Im2Col(const float* x, const ConvGeometry& g, Tensor* cols) {
  int64_t oh = g.OutH(), ow = g.OutW();
  AUTOMC_CHECK_EQ(cols->dim(), 2);
  AUTOMC_CHECK_EQ(cols->size(0), g.in_c * g.kernel * g.kernel);
  AUTOMC_CHECK_EQ(cols->size(1), oh * ow);
  float* out = cols->data();
  int64_t col_w = oh * ow;
  for (int64_t c = 0; c < g.in_c; ++c) {
    const float* xc = x + c * g.in_h * g.in_w;
    for (int64_t ki = 0; ki < g.kernel; ++ki) {
      for (int64_t kj = 0; kj < g.kernel; ++kj) {
        float* row =
            out + ((c * g.kernel + ki) * g.kernel + kj) * col_w;
        int64_t idx = 0;
        for (int64_t i = 0; i < oh; ++i) {
          int64_t src_i = i * g.stride + ki - g.pad;
          bool row_ok = src_i >= 0 && src_i < g.in_h;
          for (int64_t j = 0; j < ow; ++j, ++idx) {
            int64_t src_j = j * g.stride + kj - g.pad;
            row[idx] = (row_ok && src_j >= 0 && src_j < g.in_w)
                           ? xc[src_i * g.in_w + src_j]
                           : 0.0f;
          }
        }
      }
    }
  }
}

void Col2Im(const Tensor& cols, const ConvGeometry& g, float* dx) {
  int64_t oh = g.OutH(), ow = g.OutW();
  AUTOMC_CHECK_EQ(cols.dim(), 2);
  AUTOMC_CHECK_EQ(cols.size(0), g.in_c * g.kernel * g.kernel);
  AUTOMC_CHECK_EQ(cols.size(1), oh * ow);
  const float* in = cols.data();
  int64_t col_w = oh * ow;
  for (int64_t c = 0; c < g.in_c; ++c) {
    float* xc = dx + c * g.in_h * g.in_w;
    for (int64_t ki = 0; ki < g.kernel; ++ki) {
      for (int64_t kj = 0; kj < g.kernel; ++kj) {
        const float* row =
            in + ((c * g.kernel + ki) * g.kernel + kj) * col_w;
        int64_t idx = 0;
        for (int64_t i = 0; i < oh; ++i) {
          int64_t src_i = i * g.stride + ki - g.pad;
          bool row_ok = src_i >= 0 && src_i < g.in_h;
          for (int64_t j = 0; j < ow; ++j, ++idx) {
            int64_t src_j = j * g.stride + kj - g.pad;
            if (row_ok && src_j >= 0 && src_j < g.in_w) {
              xc[src_i * g.in_w + src_j] += row[idx];
            }
          }
        }
      }
    }
  }
}

Tensor LogSoftmax(const Tensor& logits) {
  AUTOMC_CHECK_EQ(logits.dim(), 2);
  int64_t n = logits.size(0), c = logits.size(1);
  Tensor out({n, c});
  for (int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    float* orow = out.data() + i * c;
    float mx = row[0];
    for (int64_t j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    double sum = 0.0;
    for (int64_t j = 0; j < c; ++j) sum += std::exp(static_cast<double>(row[j]) - mx);
    float lse = mx + static_cast<float>(std::log(sum));
    for (int64_t j = 0; j < c; ++j) orow[j] = row[j] - lse;
  }
  return out;
}

}  // namespace tensor
}  // namespace automc
