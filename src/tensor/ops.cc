#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "tensor/simd.h"
#include "tensor/tune.h"

namespace automc {
namespace tensor {

namespace {

// Minimum multiply-adds one ParallelFor chunk should amortize; below this
// the whole GEMM runs as a single chunk (i.e. serial).
constexpr int64_t kFlopsPerChunk = 1 << 17;

// Rows per chunk so each chunk carries ~kFlopsPerChunk multiply-adds,
// rounded up to a multiple of `round_to` so register-blocked row bands
// cover whole chunks. Depends only on the problem shape and tile choice,
// never on the thread count.
int64_t RowGrain(int64_t m, int64_t flops_per_row, int64_t round_to = 4) {
  if (flops_per_row <= 0) return m > 0 ? m : 1;
  int64_t rows = kFlopsPerChunk / flops_per_row;
  if (rows < 1) rows = 1;
  rows = (rows + round_to - 1) / round_to * round_to;
  if (rows > m && m > 0) rows = m;
  return rows;
}

}  // namespace

namespace {

// Per-thread dispatch counters, cached and keyed by the registry
// generation (same pattern as the COW counters in tensor.cc) so the GEMM
// hot path never takes the registry mutex.
struct GemmCounters {
  uint64_t generation = ~uint64_t{0};
  metrics::Counter* avx2 = nullptr;
  metrics::Counter* scalar = nullptr;
};

GemmCounters& DispatchCounters() {
  thread_local GemmCounters c;
  auto& reg = metrics::MetricsRegistry::Global();
  uint64_t gen = reg.generation();
  if (c.generation != gen) {
    c.avx2 = &reg.GetCounter("simd.gemm_avx2");
    c.scalar = &reg.GetCounter("simd.gemm_scalar");
    c.generation = gen;
  }
  return c;
}

// All three GEMM entry points funnel through here. The AVX2 path packs B
// once on the calling thread (the packed panels live in that thread's
// scratch, which stays valid while ParallelFor blocks on the chunks) and
// hands row ranges to the tiled microkernels; every other mode — and
// shapes too narrow to fill one 8-column panel — runs the scalar fma-chain
// kernel over the same row ranges. Both kernels honour the microkernel
// contract in simd.h, so which branch runs never changes the bits; chunk
// boundaries are a pure function of (m, grain), so neither does the thread
// count.
void GemmDispatch(simd::GemmOp op, const float* a, const float* b, float* c,
                  int64_t m, int64_t k, int64_t n) {
  if (simd::ActiveMode() == simd::SimdMode::kAvx2 && n >= 8) {
    if (metrics::Enabled()) DispatchCounters().avx2->Add(1);
    const simd::TileParams p = simd::ChooseTile(op, m, k, n);
    const simd::PackedB pb = simd::PackB(op, b, k, n, p.nv);
    automc::ParallelFor(m, RowGrain(m, k * n, p.mr),
                        [=](int64_t r0, int64_t r1) {
                          simd::GemmRowsAvx2(op, p, a, pb, b, c, m, k, n, r0,
                                             r1);
                        });
    return;
  }
  if (metrics::Enabled()) DispatchCounters().scalar->Add(1);
  automc::ParallelFor(m, RowGrain(m, k * n), [=](int64_t r0, int64_t r1) {
    simd::GemmRowsScalar(op, a, b, c, m, k, n, r0, r1);
  });
}

}  // namespace

void GemmAccumRaw(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n) {
  GemmDispatch(simd::GemmOp::kNormal, a, b, c, m, k, n);
}

void GemmTransposeARaw(const float* a, const float* b, float* c, int64_t m,
                       int64_t k, int64_t n) {
  GemmDispatch(simd::GemmOp::kTransposeA, a, b, c, m, k, n);
}

void GemmTransposeBRaw(const float* a, const float* b, float* c, int64_t m,
                       int64_t k, int64_t n) {
  GemmDispatch(simd::GemmOp::kTransposeB, a, b, c, m, k, n);
}

void MatMulAccumulate(const Tensor& a, const Tensor& b, Tensor* c) {
  AUTOMC_CHECK_EQ(a.dim(), 2);
  AUTOMC_CHECK_EQ(b.dim(), 2);
  AUTOMC_CHECK_EQ(c->dim(), 2);
  int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  AUTOMC_CHECK_EQ(b.size(0), k);
  AUTOMC_CHECK_EQ(c->size(0), m);
  AUTOMC_CHECK_EQ(c->size(1), n);
  GemmAccumRaw(a.data(), b.data(), c->MutableData(), m, k, n);
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Tensor c({a.size(0), b.size(1)});
  MatMulAccumulate(a, b, &c);
  return c;
}

Tensor MatMulTransposeA(const Tensor& a, const Tensor& b) {
  AUTOMC_CHECK_EQ(a.dim(), 2);
  AUTOMC_CHECK_EQ(b.dim(), 2);
  int64_t k = a.size(0), m = a.size(1), n = b.size(1);
  AUTOMC_CHECK_EQ(b.size(0), k);
  Tensor c({m, n});
  GemmTransposeARaw(a.data(), b.data(), c.MutableData(), m, k, n);
  return c;
}

Tensor MatMulTransposeB(const Tensor& a, const Tensor& b) {
  AUTOMC_CHECK_EQ(a.dim(), 2);
  AUTOMC_CHECK_EQ(b.dim(), 2);
  int64_t m = a.size(0), k = a.size(1), n = b.size(0);
  AUTOMC_CHECK_EQ(b.size(1), k);
  Tensor c({m, n});
  GemmTransposeBRaw(a.data(), b.data(), c.MutableData(), m, k, n);
  return c;
}

void Im2Col(const float* x, const ConvGeometry& g, Tensor* cols) {
  int64_t oh = g.OutH(), ow = g.OutW();
  AUTOMC_CHECK_EQ(cols->dim(), 2);
  AUTOMC_CHECK_EQ(cols->size(0), g.in_c * g.kernel * g.kernel);
  AUTOMC_CHECK_EQ(cols->size(1), oh * ow);
  // Every element (zero padding included) is written below, so a shared
  // cols buffer is replaced, never copied.
  float* out = cols->MutableDataDiscard();
  int64_t col_w = oh * ow;
  for (int64_t c = 0; c < g.in_c; ++c) {
    const float* xc = x + c * g.in_h * g.in_w;
    for (int64_t ki = 0; ki < g.kernel; ++ki) {
      for (int64_t kj = 0; kj < g.kernel; ++kj) {
        float* row =
            out + ((c * g.kernel + ki) * g.kernel + kj) * col_w;
        int64_t idx = 0;
        for (int64_t i = 0; i < oh; ++i) {
          int64_t src_i = i * g.stride + ki - g.pad;
          bool row_ok = src_i >= 0 && src_i < g.in_h;
          for (int64_t j = 0; j < ow; ++j, ++idx) {
            int64_t src_j = j * g.stride + kj - g.pad;
            row[idx] = (row_ok && src_j >= 0 && src_j < g.in_w)
                           ? xc[src_i * g.in_w + src_j]
                           : 0.0f;
          }
        }
      }
    }
  }
}

void Col2Im(const Tensor& cols, const ConvGeometry& g, float* dx) {
  int64_t oh = g.OutH(), ow = g.OutW();
  AUTOMC_CHECK_EQ(cols.dim(), 2);
  AUTOMC_CHECK_EQ(cols.size(0), g.in_c * g.kernel * g.kernel);
  AUTOMC_CHECK_EQ(cols.size(1), oh * ow);
  const float* in = cols.data();
  int64_t col_w = oh * ow;
  for (int64_t c = 0; c < g.in_c; ++c) {
    float* xc = dx + c * g.in_h * g.in_w;
    for (int64_t ki = 0; ki < g.kernel; ++ki) {
      for (int64_t kj = 0; kj < g.kernel; ++kj) {
        const float* row =
            in + ((c * g.kernel + ki) * g.kernel + kj) * col_w;
        int64_t idx = 0;
        for (int64_t i = 0; i < oh; ++i) {
          int64_t src_i = i * g.stride + ki - g.pad;
          bool row_ok = src_i >= 0 && src_i < g.in_h;
          for (int64_t j = 0; j < ow; ++j, ++idx) {
            int64_t src_j = j * g.stride + kj - g.pad;
            if (row_ok && src_j >= 0 && src_j < g.in_w) {
              xc[src_i * g.in_w + src_j] += row[idx];
            }
          }
        }
      }
    }
  }
}

Tensor LogSoftmax(const Tensor& logits) {
  AUTOMC_CHECK_EQ(logits.dim(), 2);
  int64_t n = logits.size(0), c = logits.size(1);
  Tensor out({n, c});
  const float* src = logits.data();
  float* dst = out.MutableData();
  automc::ParallelFor(n, RowGrain(n, 3 * c), [=](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const float* row = src + i * c;
      float* orow = dst + i * c;
      float mx = row[0];
      for (int64_t j = 1; j < c; ++j) mx = std::max(mx, row[j]);
      double sum = 0.0;
      for (int64_t j = 0; j < c; ++j) {
        sum += std::exp(static_cast<double>(row[j]) - mx);
      }
      float lse = mx + static_cast<float>(std::log(sum));
      for (int64_t j = 0; j < c; ++j) orow[j] = row[j] - lse;
    }
  });
  return out;
}

}  // namespace tensor
}  // namespace automc
