#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <sstream>

#include "common/metrics.h"

namespace automc {
namespace tensor {

namespace {

int64_t Product(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    AUTOMC_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

// Process-wide all-zeros buffer, grown geometrically and never written.
// The global holder keeps its use_count >= 2 for every tensor aliasing it,
// so a write through any alias always materializes instead of dirtying the
// page. After a growth step the retiring page is released by the holder; a
// sole surviving alias then owns it exclusively and may write in place,
// which is safe precisely because nobody else can see that buffer anymore.
std::mutex g_zero_mu;
std::shared_ptr<Tensor::Buffer> g_zero_page;  // NOLINT

std::shared_ptr<Tensor::Buffer> ZeroPage(int64_t numel) {
  std::lock_guard<std::mutex> lock(g_zero_mu);
  if (g_zero_page == nullptr ||
      static_cast<int64_t>(g_zero_page->size()) < numel) {
    size_t want = g_zero_page ? 2 * g_zero_page->size() : size_t{1} << 12;
    while (static_cast<int64_t>(want) < numel) want *= 2;
    g_zero_page = std::make_shared<Tensor::Buffer>(want, 0.0f);
  }
  return g_zero_page;
}

#ifndef AUTOMC_DISABLE_METRICS
// tensor.* counters, re-fetched from the registry only when a Reset()
// bumped its generation. Copies and materializations happen inside
// parallel kernels, so the per-event cost must stay at a couple of relaxed
// atomics — a mutex-guarded map lookup per alias would serialize the pool.
struct CowCounters {
  uint64_t generation = ~uint64_t{0};
  metrics::Counter* copies = nullptr;
  metrics::Counter* materializations = nullptr;
  metrics::Counter* materialized_bytes = nullptr;
  metrics::Counter* shared_bytes = nullptr;
};

CowCounters* GetCowCounters() {
  thread_local CowCounters c;
  auto& reg = metrics::MetricsRegistry::Global();
  uint64_t gen = reg.generation();
  if (c.generation != gen) {
    c.copies = &reg.GetCounter("tensor.cow_copies");
    c.materializations = &reg.GetCounter("tensor.cow_materializations");
    c.materialized_bytes = &reg.GetCounter("tensor.cow_materialized_bytes");
    c.shared_bytes = &reg.GetCounter("tensor.shared_bytes");
    c.generation = gen;
  }
  return &c;
}

void NoteAlias(int64_t numel) {
  if (numel <= 0 || !metrics::Enabled()) return;
  CowCounters* c = GetCowCounters();
  c->copies->Add(1);
  c->shared_bytes->Add(numel * static_cast<int64_t>(sizeof(float)));
}

void NoteZeroAlias(int64_t numel) {
  if (numel <= 0 || !metrics::Enabled()) return;
  GetCowCounters()->shared_bytes->Add(numel *
                                      static_cast<int64_t>(sizeof(float)));
}

void NoteMaterialize(int64_t copied_bytes) {
  if (!metrics::Enabled()) return;
  CowCounters* c = GetCowCounters();
  c->materializations->Add(1);
  c->materialized_bytes->Add(copied_bytes);
}
#else
void NoteAlias(int64_t) {}
void NoteZeroAlias(int64_t) {}
void NoteMaterialize(int64_t) {}
#endif

}  // namespace

Tensor::Tensor(std::vector<int64_t> shape)
    : shape_(std::move(shape)), numel_(Product(shape_)) {
  if (numel_ > 0) {
    buf_ = std::make_shared<Buffer>(static_cast<size_t>(numel_), 0.0f);
  }
}

Tensor::Tensor(const Tensor& other)
    : shape_(other.shape_), numel_(other.numel_), buf_(other.buf_) {
  NoteAlias(numel_);
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  shape_ = other.shape_;
  numel_ = other.numel_;
  buf_ = other.buf_;
  NoteAlias(numel_);
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : shape_(std::move(other.shape_)),
      numel_(other.numel_),
      buf_(std::move(other.buf_)) {
  other.shape_.clear();
  other.numel_ = 0;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  shape_ = std::move(other.shape_);
  numel_ = other.numel_;
  buf_ = std::move(other.buf_);
  other.shape_.clear();
  other.numel_ = 0;
  return *this;
}

void Tensor::EnsureUnique() {
  if (buf_ == nullptr || buf_.use_count() == 1) return;
  auto fresh = std::make_shared<Buffer>(buf_->begin(), buf_->begin() + numel_);
  buf_ = std::move(fresh);
  NoteMaterialize(numel_ * static_cast<int64_t>(sizeof(float)));
}

float* Tensor::MutableDataDiscard() {
  if (buf_ == nullptr) return nullptr;
  if (buf_.use_count() != 1) {
    buf_ = std::make_shared<Buffer>(static_cast<size_t>(numel_));
    NoteMaterialize(0);
  }
  return buf_->data();
}

Tensor Tensor::Zeros(std::vector<int64_t> shape) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.numel_ = Product(t.shape_);
  if (t.numel_ > 0) {
    t.buf_ = ZeroPage(t.numel_);
    NoteZeroAlias(t.numel_);
  }
  return t;
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Randn(std::vector<int64_t> shape, Rng* rng, float stddev) {
  AUTOMC_CHECK(rng != nullptr);
  Tensor t(std::move(shape));
  float* d = t.MutableData();
  for (int64_t i = 0; i < t.numel(); ++i) {
    d[i] = static_cast<float>(rng->Normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::KaimingNormal(std::vector<int64_t> shape, int64_t fan_in,
                             Rng* rng) {
  AUTOMC_CHECK_GT(fan_in, 0);
  float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return Randn(std::move(shape), rng, stddev);
}

void Tensor::Fill(float value) {
  if (numel_ == 0) return;
  if (value == 0.0f && buf_.use_count() != 1) {
    buf_ = ZeroPage(numel_);
    NoteZeroAlias(numel_);
    return;
  }
  float* d = MutableDataDiscard();
  std::fill(d, d + numel_, value);
}

Tensor Tensor::Reshaped(std::vector<int64_t> new_shape) const {
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.numel_ = Product(out.shape_);
  AUTOMC_CHECK_EQ(out.numel_, numel_)
      << "reshape " << ShapeString() << " -> " << out.ShapeString();
  out.buf_ = buf_;
  NoteAlias(numel_);
  return out;
}

void Tensor::AddInPlace(const Tensor& other) {
  AUTOMC_CHECK_EQ(numel_, other.numel_);
  if (numel_ == 0) return;
  float* d = MutableData();
  const float* s = other.data();
  for (int64_t i = 0; i < numel_; ++i) d[i] += s[i];
}

void Tensor::AxpyInPlace(float alpha, const Tensor& x) {
  AUTOMC_CHECK_EQ(numel_, x.numel_);
  if (numel_ == 0) return;
  float* d = MutableData();
  const float* s = x.data();
  for (int64_t i = 0; i < numel_; ++i) d[i] += alpha * s[i];
}

void Tensor::Scale(float alpha) {
  if (numel_ == 0) return;
  float* d = MutableData();
  for (int64_t i = 0; i < numel_; ++i) d[i] *= alpha;
}

float Tensor::SumAll() const {
  double s = 0.0;
  const float* d = data();
  for (int64_t i = 0; i < numel_; ++i) s += d[i];
  return static_cast<float>(s);
}

float Tensor::L2NormSquared() const {
  double s = 0.0;
  const float* d = data();
  for (int64_t i = 0; i < numel_; ++i) {
    s += static_cast<double>(d[i]) * d[i];
  }
  return static_cast<float>(s);
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ",";
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace tensor
}  // namespace automc
