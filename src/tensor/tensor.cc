#include "tensor/tensor.h"

#include <cmath>
#include <sstream>

namespace automc {
namespace tensor {

namespace {
int64_t Product(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    AUTOMC_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<int64_t> shape)
    : shape_(std::move(shape)),
      numel_(Product(shape_)),
      data_(static_cast<size_t>(numel_), 0.0f) {}

Tensor Tensor::Zeros(std::vector<int64_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Randn(std::vector<int64_t> shape, Rng* rng, float stddev) {
  AUTOMC_CHECK(rng != nullptr);
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng->Normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::KaimingNormal(std::vector<int64_t> shape, int64_t fan_in,
                             Rng* rng) {
  AUTOMC_CHECK_GT(fan_in, 0);
  float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return Randn(std::move(shape), rng, stddev);
}

void Tensor::Fill(float value) {
  for (auto& v : data_) v = value;
}

Tensor Tensor::Reshaped(std::vector<int64_t> new_shape) const {
  Tensor out(std::move(new_shape));
  AUTOMC_CHECK_EQ(out.numel(), numel_)
      << "reshape " << ShapeString() << " -> " << out.ShapeString();
  out.data_ = data_;
  return out;
}

void Tensor::AddInPlace(const Tensor& other) {
  AUTOMC_CHECK_EQ(numel_, other.numel_);
  for (int64_t i = 0; i < numel_; ++i) data_[i] += other.data_[i];
}

void Tensor::AxpyInPlace(float alpha, const Tensor& x) {
  AUTOMC_CHECK_EQ(numel_, x.numel_);
  for (int64_t i = 0; i < numel_; ++i) data_[i] += alpha * x.data_[i];
}

void Tensor::Scale(float alpha) {
  for (auto& v : data_) v *= alpha;
}

float Tensor::SumAll() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return static_cast<float>(s);
}

float Tensor::L2NormSquared() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return static_cast<float>(s);
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ",";
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace tensor
}  // namespace automc
