#ifndef AUTOMC_TENSOR_TENSOR_H_
#define AUTOMC_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace automc {
namespace tensor {

// Contiguous float32 N-dimensional array (up to 4-D in practice: NCHW
// activations, FCKK convolution kernels, 2-D weight matrices, 1-D biases).
// Deep-copyable; all layers own their parameters as Tensors.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int64_t> shape);
  Tensor(std::initializer_list<int64_t> shape)
      : Tensor(std::vector<int64_t>(shape)) {}

  static Tensor Zeros(std::vector<int64_t> shape);
  static Tensor Full(std::vector<int64_t> shape, float value);
  // Gaussian init with the given standard deviation.
  static Tensor Randn(std::vector<int64_t> shape, Rng* rng,
                      float stddev = 1.0f);
  // Kaiming/He normal init for a fan-in of `fan_in`.
  static Tensor KaimingNormal(std::vector<int64_t> shape, int64_t fan_in,
                              Rng* rng);

  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t dim() const { return static_cast<int64_t>(shape_.size()); }
  int64_t size(int64_t axis) const {
    AUTOMC_CHECK(axis >= 0 && axis < dim());
    return shape_[static_cast<size_t>(axis)];
  }
  int64_t numel() const { return numel_; }
  bool empty() const { return numel_ == 0; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](int64_t i) {
    AUTOMC_CHECK(i >= 0 && i < numel_);
    return data_[static_cast<size_t>(i)];
  }
  float operator[](int64_t i) const {
    AUTOMC_CHECK(i >= 0 && i < numel_);
    return data_[static_cast<size_t>(i)];
  }

  // Multi-dimensional accessors (checked in debug-style via AUTOMC_CHECK).
  float& at(int64_t i, int64_t j) { return data_[Index2(i, j)]; }
  float at(int64_t i, int64_t j) const { return data_[Index2(i, j)]; }
  float& at(int64_t i, int64_t j, int64_t k, int64_t l) {
    return data_[Index4(i, j, k, l)];
  }
  float at(int64_t i, int64_t j, int64_t k, int64_t l) const {
    return data_[Index4(i, j, k, l)];
  }

  void Fill(float value);
  // Returns a copy with a new shape; numel must match.
  Tensor Reshaped(std::vector<int64_t> new_shape) const;

  // In-place arithmetic.
  void AddInPlace(const Tensor& other);            // this += other
  void AxpyInPlace(float alpha, const Tensor& x);  // this += alpha * x
  void Scale(float alpha);                         // this *= alpha

  float SumAll() const;
  float L2NormSquared() const;
  std::string ShapeString() const;

 private:
  size_t Index2(int64_t i, int64_t j) const {
    AUTOMC_CHECK_EQ(dim(), 2);
    AUTOMC_CHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1]);
    return static_cast<size_t>(i * shape_[1] + j);
  }
  size_t Index4(int64_t i, int64_t j, int64_t k, int64_t l) const {
    AUTOMC_CHECK_EQ(dim(), 4);
    AUTOMC_CHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1] &&
                 k >= 0 && k < shape_[2] && l >= 0 && l < shape_[3]);
    return static_cast<size_t>(
        ((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l);
  }

  std::vector<int64_t> shape_;
  int64_t numel_ = 0;
  std::vector<float> data_;
};

}  // namespace tensor
}  // namespace automc

#endif  // AUTOMC_TENSOR_TENSOR_H_
