#ifndef AUTOMC_TENSOR_TENSOR_H_
#define AUTOMC_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/check.h"
#include "common/rng.h"

namespace automc {
namespace tensor {

// Contiguous float32 N-dimensional array (up to 4-D in practice: NCHW
// activations, FCKK convolution kernels, 2-D weight matrices, 1-D biases).
//
// Copy-on-write: a Tensor is a (shape, shared buffer) pair. Copying a
// Tensor — copy construction, copy assignment, Reshaped — aliases the
// buffer in O(1); the first write through a mutable accessor materializes
// a private copy iff the buffer is shared. This is what makes
// Model::Clone a shallow alias of every parameter, so the search can
// snapshot candidate models for free and pay only for the layers a
// compression step actually rewrites.
//
// Aliasing rules:
//   * `data()` is const-only. Writers must use `MutableData()` (unshares,
//     preserving bytes) or `MutableDataDiscard()` (unshares without
//     copying — only when every element will be overwritten).
//   * Non-const `operator[]` / `at()` unshare on every access (one
//     relaxed atomic use_count load when already unique).
//   * All-zero tensors (`Zeros`, `Fill(0)` on a shared buffer) alias one
//     process-wide zero page, so cloned gradients and fresh optimizer
//     state cost nothing until written.
//
// Thread safety: distinct Tensor objects aliasing one buffer may be read
// and materialized concurrently (the shared_ptr control block is atomic;
// buffer bytes are immutable while shared). The same Tensor object is not
// thread-safe — parallel kernels must hoist `data()`/`MutableData()`
// pointers before entering ParallelFor.
class Tensor {
 public:
  // Buffers are 64-byte aligned so `data()`/`MutableData()` of any tensor
  // (and the shared zero page) start on a cache line and the SIMD kernels
  // can use aligned vector loads against buffer starts.
  using Buffer = std::vector<float, AlignedAllocator<float, 64>>;

  Tensor() = default;
  explicit Tensor(std::vector<int64_t> shape);  // fresh zero-filled buffer
  Tensor(std::initializer_list<int64_t> shape)
      : Tensor(std::vector<int64_t>(shape)) {}

  // O(1) buffer-aliasing copies (see class comment).
  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(Tensor&& other) noexcept;

  // Aliases the shared zero page: O(1), no allocation.
  static Tensor Zeros(std::vector<int64_t> shape);
  static Tensor Full(std::vector<int64_t> shape, float value);
  // Gaussian init with the given standard deviation.
  static Tensor Randn(std::vector<int64_t> shape, Rng* rng,
                      float stddev = 1.0f);
  // Kaiming/He normal init for a fan-in of `fan_in`.
  static Tensor KaimingNormal(std::vector<int64_t> shape, int64_t fan_in,
                              Rng* rng);

  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t dim() const { return static_cast<int64_t>(shape_.size()); }
  int64_t size(int64_t axis) const {
    AUTOMC_CHECK(axis >= 0 && axis < dim());
    return shape_[static_cast<size_t>(axis)];
  }
  int64_t numel() const { return numel_; }
  bool empty() const { return numel_ == 0; }

  // Read-only view of the buffer; nullptr when empty.
  const float* data() const { return buf_ ? buf_->data() : nullptr; }
  // Writable view; materializes a private copy first when shared.
  float* MutableData() {
    EnsureUnique();
    return buf_ ? buf_->data() : nullptr;
  }
  // Writable view that skips the copy: when shared, swaps in a fresh
  // *uninitialized-to-zero* buffer instead of duplicating bytes. Only
  // valid when the caller overwrites every element before reading any.
  float* MutableDataDiscard();

  float& operator[](int64_t i) {
    AUTOMC_CHECK(i >= 0 && i < numel_);
    EnsureUnique();
    return (*buf_)[static_cast<size_t>(i)];
  }
  float operator[](int64_t i) const {
    AUTOMC_CHECK(i >= 0 && i < numel_);
    return (*buf_)[static_cast<size_t>(i)];
  }

  // Multi-dimensional accessors (checked in debug-style via AUTOMC_CHECK).
  float& at(int64_t i, int64_t j) {
    size_t idx = Index2(i, j);
    EnsureUnique();
    return (*buf_)[idx];
  }
  float at(int64_t i, int64_t j) const { return (*buf_)[Index2(i, j)]; }
  float& at(int64_t i, int64_t j, int64_t k, int64_t l) {
    size_t idx = Index4(i, j, k, l);
    EnsureUnique();
    return (*buf_)[idx];
  }
  float at(int64_t i, int64_t j, int64_t k, int64_t l) const {
    return (*buf_)[Index4(i, j, k, l)];
  }

  // Fill(0) on a shared buffer re-aliases the zero page (O(1)); any other
  // fill materializes (without copying) and writes in place.
  void Fill(float value);
  // Returns an O(1) alias with a new shape; numel must match.
  Tensor Reshaped(std::vector<int64_t> new_shape) const;

  // In-place arithmetic (materializes when shared).
  void AddInPlace(const Tensor& other);            // this += other
  void AxpyInPlace(float alpha, const Tensor& x);  // this += alpha * x
  void Scale(float alpha);                         // this *= alpha

  float SumAll() const;
  float L2NormSquared() const;
  std::string ShapeString() const;

  // --- COW introspection (tests, metrics) ----------------------------------
  // Owners of this buffer: other aliases plus, for all-zero tensors, the
  // global zero-page holder. 0 for an empty tensor, 1 when exclusively
  // owned (writes are in-place).
  int64_t use_count() const {
    return buf_ ? static_cast<int64_t>(buf_.use_count()) : 0;
  }
  bool SharesBufferWith(const Tensor& other) const {
    return buf_ != nullptr && buf_ == other.buf_;
  }

 private:
  // Materializes a private copy of the first numel_ elements when the
  // buffer is shared; no-op when exclusively owned or empty.
  void EnsureUnique();

  size_t Index2(int64_t i, int64_t j) const {
    AUTOMC_CHECK_EQ(dim(), 2);
    AUTOMC_CHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1]);
    return static_cast<size_t>(i * shape_[1] + j);
  }
  size_t Index4(int64_t i, int64_t j, int64_t k, int64_t l) const {
    AUTOMC_CHECK_EQ(dim(), 4);
    AUTOMC_CHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1] &&
                 k >= 0 && k < shape_[2] && l >= 0 && l < shape_[3]);
    return static_cast<size_t>(
        ((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l);
  }

  std::vector<int64_t> shape_;
  int64_t numel_ = 0;
  // Invariant: buf_ != nullptr iff numel_ > 0; buf_->size() >= numel_
  // (zero-page buffers can be larger than the tensor that aliases them).
  std::shared_ptr<Buffer> buf_;
};

}  // namespace tensor
}  // namespace automc

#endif  // AUTOMC_TENSOR_TENSOR_H_
