#include "tensor/simd.h"

#include <atomic>
#include <cmath>
#include <cstdlib>

namespace automc {
namespace tensor {
namespace simd {

// Instantiated in simd_avx2.cc (compiled with -mavx2 -mfma) when the
// toolchain supports it; see GemmRowsScalar below.
void GemmRowsScalarFmaTu(GemmOp op, const float* a, const float* b, float* c,
                         int64_t m, int64_t k, int64_t n, int64_t r0,
                         int64_t r1);

namespace {

#include "tensor/simd_scalar.inc"

bool DetectHardware() {
#if defined(AUTOMC_HAVE_AVX2_KERNELS)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

SimdMode DeriveMode() {
  if (!KernelsCompiled() || !HardwareOk()) return SimdMode::kScalarGeneric;
  const char* env = std::getenv("AUTOMC_SIMD");
  if (env != nullptr && env[0] == '0' && env[1] == '\0') {
    return SimdMode::kScalarHwFma;
  }
  return SimdMode::kAvx2;
}

std::atomic<SimdMode> g_mode{SimdMode::kScalarGeneric};
std::atomic<bool> g_mode_valid{false};

}  // namespace

bool KernelsCompiled() {
#if defined(AUTOMC_HAVE_AVX2_KERNELS)
  return true;
#else
  return false;
#endif
}

bool HardwareOk() {
  static const bool ok = DetectHardware();
  return ok;
}

SimdMode ActiveMode() {
  if (!g_mode_valid.load(std::memory_order_acquire)) RefreshDispatch();
  return g_mode.load(std::memory_order_relaxed);
}

void RefreshDispatch() {
  g_mode.store(DeriveMode(), std::memory_order_relaxed);
  g_mode_valid.store(true, std::memory_order_release);
}

void GemmRowsScalar(GemmOp op, const float* a, const float* b, float* c,
                    int64_t m, int64_t k, int64_t n, int64_t r0, int64_t r1) {
#if defined(AUTOMC_HAVE_AVX2_KERNELS)
  // Same source, same chains — but std::fmaf inlines to vfmadd instead of
  // a libm call per element, so AUTOMC_SIMD=0 runs stay fast on FMA
  // hardware. Results are identical either way (IEEE fma is fma).
  if (HardwareOk()) {
    GemmRowsScalarFmaTu(op, a, b, c, m, k, n, r0, r1);
    return;
  }
#endif
  ScalarRowsImpl(op, a, b, c, m, k, n, r0, r1, 0, n);
}

}  // namespace simd
}  // namespace tensor
}  // namespace automc
