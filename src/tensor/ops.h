#ifndef AUTOMC_TENSOR_OPS_H_
#define AUTOMC_TENSOR_OPS_H_

#include <cstdint>

#include "tensor/tensor.h"

namespace automc {
namespace tensor {

// Dense kernels shared by the layer implementations. All output tensors are
// allocated by the caller-facing functions; shapes are checked.
//
// Every GEMM routes through the raw kernels below, which are cache-blocked
// and run on the shared thread pool (common/thread_pool.h). Parallelism is
// over disjoint output rows and the per-element accumulation order never
// depends on the thread count, so results are bit-identical for any
// AUTOMC_THREADS value.

// c = a * b for 2-D tensors; a is [m,k], b is [k,n], result [m,n].
Tensor MatMul(const Tensor& a, const Tensor& b);
// c += a * b into an existing [m,n] tensor.
void MatMulAccumulate(const Tensor& a, const Tensor& b, Tensor* c);
// c = a^T * b with a [k,m], b [k,n] -> [m,n].
Tensor MatMulTransposeA(const Tensor& a, const Tensor& b);
// c = a * b^T with a [m,k], b [n,k] -> [m,n].
Tensor MatMulTransposeB(const Tensor& a, const Tensor& b);

// Raw row-major GEMM kernels over caller-owned buffers. The layer code
// (Conv2d's im2col path) uses these directly on tensor slices to avoid
// per-sample copies; the Tensor wrappers above add shape checks.
// C[m,n] += A[m,k] * B[k,n].
void GemmAccumRaw(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n);
// C[m,n] += A[k,m]^T * B[k,n].
void GemmTransposeARaw(const float* a, const float* b, float* c, int64_t m,
                       int64_t k, int64_t n);
// C[m,n] += A[m,k] * B[n,k]^T.
void GemmTransposeBRaw(const float* a, const float* b, float* c, int64_t m,
                       int64_t k, int64_t n);

// Geometry of a 2-D convolution / pooling window.
struct ConvGeometry {
  int64_t in_c = 0, in_h = 0, in_w = 0;
  int64_t kernel = 1, stride = 1, pad = 0;
  int64_t OutH() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  int64_t OutW() const { return (in_w + 2 * pad - kernel) / stride + 1; }
};

// Unfolds one image x[c,h,w] (given as a pointer into an NCHW batch) into a
// column matrix of shape [C*k*k, OH*OW]; zero padding outside the image.
void Im2Col(const float* x, const ConvGeometry& g, Tensor* cols);
// Adjoint of Im2Col: folds the column matrix back, accumulating into dx
// (dx must be pre-zeroed by the caller for a pure adjoint).
void Col2Im(const Tensor& cols, const ConvGeometry& g, float* dx);

// Row-wise log-softmax of a [n, c] tensor.
Tensor LogSoftmax(const Tensor& logits);

}  // namespace tensor
}  // namespace automc

#endif  // AUTOMC_TENSOR_OPS_H_
