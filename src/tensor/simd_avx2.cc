// AVX2/FMA GEMM microkernels. This is the only translation unit compiled
// with -mavx2 -mfma (see src/tensor/CMakeLists.txt); nothing here executes
// unless runtime cpuid confirmed both features, so the rest of the binary
// stays runnable on baseline x86-64.
#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "tensor/simd.h"

namespace automc {
namespace tensor {
namespace simd {

namespace {

#include "tensor/simd_scalar.inc"

// MR x (8*W) register tile of C held across one k-block: per element the
// chain is acc = fmadd(a, b, acc) in ascending-k order (the microkernel
// contract in simd.h). B arrives packed so every k step reads 8*W
// contiguous aligned floats; A is read as MR broadcast scalars through the
// (a_rs, a_ks) strides, which covers both the row-major and transposed-A
// layouts without packing A.
template <int MR, int W>
void MicroKernel(const float* a, int64_t a_rs, int64_t a_ks, const float* bp,
                 float* c, int64_t ldc, int64_t klen) {
  // The unroll pragmas are load-bearing: without them gcc -O2 leaves the
  // MR x W tile loops rolled, `acc` stays a stack array, and every fma
  // round-trips C through memory (~3x slower). Fully unrolled, scalar
  // replacement promotes the whole tile into ymm registers for the k loop.
  __m256 acc[MR][W];
#pragma GCC unroll 6
  for (int r = 0; r < MR; ++r) {
#pragma GCC unroll 3
    for (int v = 0; v < W; ++v) {
      acc[r][v] = _mm256_loadu_ps(c + r * ldc + 8 * v);
    }
  }
  // Unrolling k by 2 interleaves two body copies (halving loop overhead
  // and giving the scheduler more independent work) without touching the
  // per-element chain: each acc[r][v] still receives its fmas in ascending
  // kk order — the compiler cannot reassociate FP math without fast-math.
#pragma GCC unroll 2
  for (int64_t kk = 0; kk < klen; ++kk) {
    const float* brow = bp + kk * 8 * W;
    __m256 bv[W];
#pragma GCC unroll 3
    for (int v = 0; v < W; ++v) bv[v] = _mm256_load_ps(brow + 8 * v);
    const float* ak = a + kk * a_ks;
#pragma GCC unroll 6
    for (int r = 0; r < MR; ++r) {
      __m256 av = _mm256_broadcast_ss(ak + r * a_rs);
#pragma GCC unroll 3
      for (int v = 0; v < W; ++v) {
        acc[r][v] = _mm256_fmadd_ps(av, bv[v], acc[r][v]);
      }
    }
  }
#pragma GCC unroll 6
  for (int r = 0; r < MR; ++r) {
#pragma GCC unroll 3
    for (int v = 0; v < W; ++v) {
      _mm256_storeu_ps(c + r * ldc + 8 * v, acc[r][v]);
    }
  }
}

using KernelFn = void (*)(const float*, int64_t, int64_t, const float*,
                          float*, int64_t, int64_t);

// [group width W - 1][band rows MR - 1]. All MR x W combinations exist so
// row-band and panel-group remainders reuse the same code path; the tuner
// only ever *prefers* tiles with MR*W <= 12 (register budget).
constexpr KernelFn kKernels[3][6] = {
    {MicroKernel<1, 1>, MicroKernel<2, 1>, MicroKernel<3, 1>,
     MicroKernel<4, 1>, MicroKernel<5, 1>, MicroKernel<6, 1>},
    {MicroKernel<1, 2>, MicroKernel<2, 2>, MicroKernel<3, 2>,
     MicroKernel<4, 2>, MicroKernel<5, 2>, MicroKernel<6, 2>},
    {MicroKernel<1, 3>, MicroKernel<2, 3>, MicroKernel<3, 3>,
     MicroKernel<4, 3>, MicroKernel<5, 3>, MicroKernel<6, 3>},
};

}  // namespace

// Scalar fma chains compiled in this TU: std::fmaf inlines to vfmadd, so
// the AUTOMC_SIMD=0 reference path keeps hardware speed on FMA machines.
// Declared in simd.cc, which forwards GemmRowsScalar here when cpuid
// allows.
void GemmRowsScalarFmaTu(GemmOp op, const float* a, const float* b, float* c,
                         int64_t m, int64_t k, int64_t n, int64_t r0,
                         int64_t r1) {
  ScalarRowsImpl(op, a, b, c, m, k, n, r0, r1, 0, n);
}

void GemmRowsAvx2(GemmOp op, const TileParams& p, const float* a,
                  const PackedB& pb, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n, int64_t r0, int64_t r1) {
  const bool ta = op == GemmOp::kTransposeA;
  const int64_t a_rs = ta ? 1 : k;   // a stride between band rows
  const int64_t a_ks = ta ? m : 1;   // a stride per k step
  const int64_t kc = p.kc > 0 ? std::min<int64_t>(p.kc, k) : k;
  const int64_t full_groups = pb.nv > 0 ? pb.n8 / pb.nv : 0;
  const int64_t rem_panels = pb.nv > 0 ? pb.n8 % pb.nv : 0;
  const int64_t group_stride = k * 8 * pb.nv;  // floats per full group

  for (int64_t k0 = 0; k0 < k; k0 += kc) {
    const int64_t klen = std::min(kc, k - k0);
    for (int64_t i = r0; i < r1;) {
      const int mr = static_cast<int>(std::min<int64_t>(p.mr, r1 - i));
      const float* aband = ta ? a + k0 * m + i : a + i * k + k0;
      float* crow = c + i * n;
      int64_t col = 0;
      for (int64_t g = 0; g < full_groups; ++g) {
        const float* bblk = pb.data + g * group_stride + k0 * 8 * pb.nv;
        kKernels[pb.nv - 1][mr - 1](aband, a_rs, a_ks, bblk, crow + col, n,
                                    klen);
        col += 8 * pb.nv;
      }
      if (rem_panels > 0) {
        const float* bblk =
            pb.data + full_groups * group_stride + k0 * 8 * rem_panels;
        kKernels[rem_panels - 1][mr - 1](aband, a_rs, a_ks, bblk, crow + col,
                                         n, klen);
      }
      i += mr;
    }
  }
  // n % 8 tail columns: scalar fma chains over the full k. Identical
  // per-element chains whether or not the vector region was k-blocked —
  // a float store/reload between blocks is bit-preserving.
  if (pb.n8 * 8 < n) {
    ScalarRowsImpl(op, a, b, c, m, k, n, r0, r1, pb.n8 * 8, n);
  }
}

}  // namespace simd
}  // namespace tensor
}  // namespace automc
