#ifndef AUTOMC_TENSOR_TUNE_H_
#define AUTOMC_TENSOR_TUNE_H_

#include <cstdint>

#include "tensor/simd.h"

namespace automc {
namespace tensor {
namespace simd {

// Shape-adaptive tile auto-tuner for the AVX2 GEMM path.
//
// Shapes are bucketed into classes by (op, floor(log2(m)), floor(log2(k)),
// floor(log2(n))). The first time a class is seen, a small exhaustive grid
// of TileParams candidates is benchmarked on synthetic operands shaped like
// the triggering call, and the fastest candidate is cached — in memory and,
// when AUTOMC_TUNE_CACHE names a file, on disk so later processes skip the
// probes entirely.
//
// Tuning never affects results: every candidate obeys the microkernel
// contract (simd.h), so the tuner is free to pick differently run-to-run or
// machine-to-machine and outputs stay bit-identical.
//
// On-disk format (little-endian, written atomically via temp + rename):
//   "AMTN" | u32 version | u32 count | count x (u32 key, i32 mr, i32 nv,
//   i32 kc) | u32 crc32-of-preceding-bytes
// Any mismatch — magic, version, truncation, CRC — makes the loader ignore
// the file and re-tune from scratch; the next save rewrites it whole.

// Tuned tile parameters for the shape class of (op, m, k, n). Probes and
// caches on first use of a class. Only meaningful when ActiveMode() is
// kAvx2; callers on the scalar paths never ask.
TileParams ChooseTile(GemmOp op, int64_t m, int64_t k, int64_t n);

// Forces every ChooseTile call to return `p` until cleared — lets tests
// sweep tilings and assert bitwise-identical outputs.
void SetTileOverrideForTest(const TileParams& p);
void ClearTileOverrideForTest();

// Drops the in-memory table and re-reads AUTOMC_TUNE_CACHE on next use
// (does not delete any cache file).
void ResetTunerForTest();

}  // namespace simd
}  // namespace tensor
}  // namespace automc

#endif  // AUTOMC_TENSOR_TUNE_H_
