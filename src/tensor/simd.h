#ifndef AUTOMC_TENSOR_SIMD_H_
#define AUTOMC_TENSOR_SIMD_H_

#include <cstdint>

namespace automc {
namespace tensor {
namespace simd {

// Vectorized GEMM substrate behind tensor/ops.cc.
//
// Microkernel contract (the determinism anchor)
// ---------------------------------------------
// For every output element c[i][j], every kernel in this layer — the
// hand-tiled AVX2/FMA path, the compiler-scalar fallback, and the packed
// remainder handling — computes exactly the chain
//
//     acc = c[i][j]
//     for kk = 0 .. k-1 (ascending):  acc = fma(a(i,kk), b(kk,j), acc)
//     c[i][j] = acc
//
// where fma is the IEEE-754 single-rounding fused multiply-add
// (std::fmaf on the scalar paths, _mm256_fmadd_ps lanes on the AVX2
// path — bitwise the same operation). Zero operands participate like any
// other value; no path skips a product (the old scalar kernels skipped
// av == 0.0f in their tail loops, which made tails and tiles bitwise
// incomparable — that shortcut is intentionally gone). Tiling parameters
// (MR/NV/KC), panel packing, chunk boundaries, and the SIMD/scalar choice
// only reorder *which elements* are computed when, never the per-element
// chain, so results are bit-identical across every tuning, every
// AUTOMC_SIMD setting, and every AUTOMC_THREADS value.
//
// Dispatch
// --------
// The active mode is derived once (then cached in an atomic) from
// compile-time availability of the AVX2 translation unit, runtime cpuid
// (AVX2 + FMA), and the AUTOMC_SIMD environment knob:
//
//   kAvx2          compiled && cpuid ok && AUTOMC_SIMD != 0
//   kScalarHwFma   compiled && cpuid ok && AUTOMC_SIMD == 0
//                  (scalar fma chains from the -mavx2 -mfma TU: no packing,
//                  no tuner, no hand vectorization — the bitwise reference)
//   kScalarGeneric everything else (std::fmaf via libm; the only mode on
//                  non-x86 or pre-AVX2 hardware)
enum class SimdMode { kAvx2, kScalarHwFma, kScalarGeneric };

// True when simd_avx2.cc was compiled into this binary.
bool KernelsCompiled();
// True when the running CPU reports AVX2 and FMA.
bool HardwareOk();
// The cached dispatch decision (see table above).
SimdMode ActiveMode();
// Re-derives the dispatch decision from the environment (AUTOMC_SIMD) and
// cpuid. Tests flip AUTOMC_SIMD with setenv and call this; normal code
// never needs to.
void RefreshDispatch();

// The three GEMM layouts tensor/ops.cc exposes. The effective computation
// is always C[m,n] += A'[m,k] * B'[k,n] with
//   kNormal      a'(i,kk) = a[i*k + kk]   b'(kk,j) = b[kk*n + j]
//   kTransposeA  a'(i,kk) = a[kk*m + i]   b'(kk,j) = b[kk*n + j]
//   kTransposeB  a'(i,kk) = a[i*k + kk]   b'(kk,j) = b[j*k + kk]
enum class GemmOp { kNormal, kTransposeA, kTransposeB };

// Tile / pack parameters the auto-tuner (tensor/tune.h) searches over.
//   mr — output rows per register tile (1..6)
//   nv — 8-float vectors per register tile row (1..3, i.e. NR = 8*nv)
//   kc — k-block length; C tiles are flushed and reloaded between k-blocks
//        (exact: a float store/load round-trip is bit-preserving). <= 0
//        means "no blocking" (one block of the full k).
// Constraint: mr * nv <= 12 so the accumulator tile fits in 16 ymm regs.
struct TileParams {
  int32_t mr = 4;
  int32_t nv = 2;
  int32_t kc = 0;
};

// B packed into 64-byte-aligned panel groups (see PackB). Covers columns
// [0, 8*n8); the n%8 tail columns are computed from the unpacked B.
struct PackedB {
  const float* data = nullptr;
  int64_t n8 = 0;  // number of packed 8-column panels
  int32_t nv = 1;  // panels per group (group width = 8*nv columns)
};

// Packs the effective B'[k,n] into groups of nv 8-column panels: group g
// holds columns [g*8*nv, ...) as k rows of 8*nv contiguous floats, so the
// microkernel streams one aligned linear buffer per group. The returned
// pointer aliases a growable thread-local scratch buffer owned by the
// calling thread; it stays valid until that same thread packs again, which
// is guaranteed not to happen while the ParallelFor consuming it is in
// flight (nested GEMMs run inline and complete before the body returns).
PackedB PackB(GemmOp op, const float* b, int64_t k, int64_t n, int32_t nv);

// Scalar reference kernel: rows [r0, r1), columns [0, n), full-k fma
// chains. Dispatches to the fma-TU instantiation when the hardware
// supports it, else to the libm-fmaf generic one. Bit-identical to the
// AVX2 path by the microkernel contract.
void GemmRowsScalar(GemmOp op, const float* a, const float* b, float* c,
                    int64_t m, int64_t k, int64_t n, int64_t r0, int64_t r1);

// AVX2/FMA packed path: rows [r0, r1), packed columns via `pb`, n%8 tail
// columns from the raw `b`. Only callable when ActiveMode() could return
// kAvx2 (i.e. KernelsCompiled() && HardwareOk()).
void GemmRowsAvx2(GemmOp op, const TileParams& p, const float* a,
                  const PackedB& pb, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n, int64_t r0, int64_t r1);

}  // namespace simd
}  // namespace tensor
}  // namespace automc

#endif  // AUTOMC_TENSOR_SIMD_H_
