#include <cstdint>
#include <cstring>
#include <new>

#include "tensor/simd.h"

namespace automc {
namespace tensor {
namespace simd {

namespace {

// Growable 64-byte-aligned per-thread pack scratch. One buffer per thread
// suffices: a GEMM packs, then consumes the packed panels inside its own
// ParallelFor before returning, and nested GEMMs (conv's per-sample calls
// from inside a worker) run their loops inline, so a thread never packs
// while an earlier pack on the same thread is still live.
struct PackScratch {
  float* data = nullptr;
  size_t capacity = 0;

  ~PackScratch() { ::operator delete(data, std::align_val_t(64)); }

  float* Ensure(size_t n) {
    if (n > capacity) {
      ::operator delete(data, std::align_val_t(64));
      size_t want = capacity ? capacity : size_t{1} << 12;
      while (want < n) want *= 2;
      data = static_cast<float*>(
          ::operator new(want * sizeof(float), std::align_val_t(64)));
      capacity = want;
    }
    return data;
  }
};

thread_local PackScratch t_pack_scratch;

}  // namespace

PackedB PackB(GemmOp op, const float* b, int64_t k, int64_t n, int32_t nv) {
  PackedB out;
  out.n8 = n / 8;
  out.nv = nv;
  if (out.n8 == 0 || k == 0) return out;

  float* dst = t_pack_scratch.Ensure(static_cast<size_t>(k * out.n8 * 8));
  out.data = dst;

  // Panel groups of width 8*nv columns (the last group may be narrower):
  // group g holds k rows of 8*w contiguous floats starting at column
  // g*8*nv. Group starts are 32-byte aligned by construction (8 floats per
  // panel row), so the microkernel can use aligned vector loads.
  int64_t panels_left = out.n8;
  int64_t col0 = 0;
  while (panels_left > 0) {
    int64_t w = panels_left < nv ? panels_left : nv;
    int64_t row_floats = 8 * w;
    if (op == GemmOp::kTransposeB) {
      // b'(kk, j) = b[j*k + kk]: transpose-gather one source row (a column
      // of B') at a time so reads stay contiguous.
      for (int64_t j = 0; j < row_floats; ++j) {
        const float* src = b + (col0 + j) * k;
        float* lane = dst + j;
        for (int64_t kk = 0; kk < k; ++kk) lane[kk * row_floats] = src[kk];
      }
    } else {
      // B is row-major [k, n]: each packed row is a straight copy.
      for (int64_t kk = 0; kk < k; ++kk) {
        std::memcpy(dst + kk * row_floats, b + kk * n + col0,
                    static_cast<size_t>(row_floats) * sizeof(float));
      }
    }
    dst += k * row_floats;
    col0 += row_floats;
    panels_left -= w;
  }
  return out;
}

}  // namespace simd
}  // namespace tensor
}  // namespace automc
