#include "tensor/tune.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/bytes.h"
#include "common/metrics.h"

namespace automc {
namespace tensor {
namespace simd {

namespace {

constexpr char kMagic[4] = {'A', 'M', 'T', 'N'};
constexpr uint32_t kVersion = 1;

// Hot-path counters, cached thread-locally and keyed by the registry
// generation so Reset() in tests never leaves a dangling pointer (same
// pattern as the COW counters in tensor.cc).
struct TuneCounters {
  uint64_t generation = ~uint64_t{0};
  metrics::Counter* hits = nullptr;
  metrics::Counter* probes = nullptr;
};

TuneCounters& Counters() {
  thread_local TuneCounters c;
  auto& reg = metrics::MetricsRegistry::Global();
  uint64_t gen = reg.generation();
  if (c.generation != gen) {
    c.hits = &reg.GetCounter("simd.tune_hits");
    c.probes = &reg.GetCounter("simd.tune_probes");
    c.generation = gen;
  }
  return c;
}

int32_t FloorLog2(int64_t v) {
  int32_t lg = 0;
  while (v > 1) {
    v >>= 1;
    ++lg;
  }
  return lg;
}

// op (2 bits) | lg m (6) | lg k (6) | lg n (6) — plenty of headroom for
// int64 extents (lg < 64 fits in 6 bits).
uint32_t ShapeKey(GemmOp op, int64_t m, int64_t k, int64_t n) {
  return (static_cast<uint32_t>(op) << 18) |
         (static_cast<uint32_t>(FloorLog2(std::max<int64_t>(m, 1))) << 12) |
         (static_cast<uint32_t>(FloorLog2(std::max<int64_t>(k, 1))) << 6) |
         static_cast<uint32_t>(FloorLog2(std::max<int64_t>(n, 1)));
}

struct TunerState {
  std::shared_mutex mu;
  std::map<uint32_t, TileParams> table;  // ordered: deterministic file bytes
  bool file_loaded = false;
  bool has_override = false;
  TileParams override_params;
};

TunerState& State() {
  static TunerState* s = new TunerState();
  return *s;
}

std::string CachePath() {
  const char* env = std::getenv("AUTOMC_TUNE_CACHE");
  return (env != nullptr && env[0] != '\0') ? std::string(env)
                                            : std::string();
}

// Mutates st.table on success; any format violation leaves it untouched.
void LoadCacheFileLocked(TunerState& st) {
  std::string path = CachePath();
  if (path.empty()) return;
  std::ifstream in(path, std::ios::binary);
  if (!in) return;
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (blob.size() < sizeof(kMagic) + 3 * sizeof(uint32_t)) return;
  size_t payload = blob.size() - sizeof(uint32_t);
  ByteReader tail(std::string_view(blob).substr(payload));
  uint32_t stored_crc = 0;
  if (!tail.U32(&stored_crc) || stored_crc != Crc32(blob.data(), payload)) {
    return;
  }
  ByteReader r(std::string_view(blob).substr(0, payload));
  char magic[4];
  uint32_t version = 0, count = 0;
  if (!r.Raw(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0 || !r.U32(&version) ||
      version != kVersion || !r.U32(&count)) {
    return;
  }
  std::map<uint32_t, TileParams> loaded;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t key = 0;
    TileParams p;
    if (!r.U32(&key) || !r.I32(&p.mr) || !r.I32(&p.nv) || !r.I32(&p.kc)) {
      return;
    }
    // Clamp to the kernel table's bounds — a stale file from a future
    // version must not index past kKernels.
    if (p.mr < 1 || p.mr > 6 || p.nv < 1 || p.nv > 3) return;
    loaded.emplace(key, p);
  }
  if (!r.Done()) return;
  for (const auto& [key, p] : loaded) st.table.emplace(key, p);
}

void SaveCacheFileLocked(const TunerState& st) {
  std::string path = CachePath();
  if (path.empty()) return;
  ByteWriter w;
  w.Raw(kMagic, sizeof(kMagic));
  w.U32(kVersion);
  w.U32(static_cast<uint32_t>(st.table.size()));
  for (const auto& [key, p] : st.table) {
    w.U32(key);
    w.I32(p.mr);
    w.I32(p.nv);
    w.I32(p.kc);
  }
  uint32_t crc = Crc32(w.str());
  w.U32(crc);
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out.write(w.str().data(), static_cast<std::streamsize>(w.str().size()));
    if (!out) return;
  }
  std::rename(tmp.c_str(), path.c_str());
}

using ProbeBuffer = std::vector<float, AlignedAllocator<float, 64>>;

void FillPattern(ProbeBuffer& buf, uint32_t seed) {
  uint32_t x = seed;
  for (float& v : buf) {
    x = x * 1664525u + 1013904223u;
    v = static_cast<float>(x >> 8) * (1.0f / 16777216.0f) - 0.5f;
  }
}

// Benchmarks the candidate grid on synthetic operands shaped like the
// triggering call (m capped — the best tile barely depends on row count)
// and returns the fastest. Wall-clock noise only affects speed, never
// results, so no attempt is made to stabilise the measurement beyond a
// warm-up pass and a couple of repetitions.
TileParams ProbeShape(GemmOp op, int64_t m, int64_t k, int64_t n) {
  const int64_t pm = std::min<int64_t>(m, 96);
  ProbeBuffer a(static_cast<size_t>(pm * k));
  ProbeBuffer b(static_cast<size_t>(k * n));
  ProbeBuffer c(static_cast<size_t>(pm * n));
  FillPattern(a, 0x41555431u);
  FillPattern(b, 0x4d435455u);
  FillPattern(c, 0x4e453031u);

  const int64_t flops = 2 * pm * k * n;
  const int reps = static_cast<int>(
      std::clamp<int64_t>(1 + (int64_t{4} << 20) / std::max<int64_t>(flops, 1),
                          1, 50));

  static constexpr struct {
    int32_t mr, nv;
  } kGrid[] = {{4, 1}, {4, 2}, {4, 3}, {6, 1}, {6, 2}};

  TileParams best;
  double best_ns = -1.0;
  for (const auto& g : kGrid) {
    for (int32_t kc : {int32_t{0}, int32_t{128}}) {
      if (kc != 0 && k <= kc + 32) continue;  // indistinguishable from full k
      TileParams p{g.mr, g.nv, kc};
      PackedB pb = PackB(op, b.data(), k, n, p.nv);
      GemmRowsAvx2(op, p, a.data(), pb, b.data(), c.data(), pm, k, n, 0, pm);
      auto t0 = std::chrono::steady_clock::now();
      for (int rep = 0; rep < reps; ++rep) {
        GemmRowsAvx2(op, p, a.data(), pb, b.data(), c.data(), pm, k, n, 0,
                     pm);
      }
      auto t1 = std::chrono::steady_clock::now();
      double ns = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count());
      Counters().probes->Add(1);
      if (best_ns < 0.0 || ns < best_ns) {
        best_ns = ns;
        best = p;
      }
    }
  }
  return best;
}

}  // namespace

TileParams ChooseTile(GemmOp op, int64_t m, int64_t k, int64_t n) {
  TunerState& st = State();
  const uint32_t key = ShapeKey(op, m, k, n);
  {
    std::shared_lock<std::shared_mutex> lk(st.mu);
    if (st.has_override) return st.override_params;
    if (st.file_loaded) {
      auto it = st.table.find(key);
      if (it != st.table.end()) {
        Counters().hits->Add(1);
        return it->second;
      }
    }
  }
  std::unique_lock<std::shared_mutex> lk(st.mu);
  if (st.has_override) return st.override_params;
  if (!st.file_loaded) {
    LoadCacheFileLocked(st);
    st.file_loaded = true;
  }
  auto it = st.table.find(key);
  if (it != st.table.end()) {
    Counters().hits->Add(1);
    return it->second;
  }
  // First touch of this shape class: probe while holding the lock so
  // concurrent callers of the same class wait instead of probing twice.
  TileParams best = ProbeShape(op, m, k, n);
  st.table.emplace(key, best);
  SaveCacheFileLocked(st);
  return best;
}

void SetTileOverrideForTest(const TileParams& p) {
  TunerState& st = State();
  std::unique_lock<std::shared_mutex> lk(st.mu);
  st.has_override = true;
  st.override_params = p;
}

void ClearTileOverrideForTest() {
  TunerState& st = State();
  std::unique_lock<std::shared_mutex> lk(st.mu);
  st.has_override = false;
}

void ResetTunerForTest() {
  TunerState& st = State();
  std::unique_lock<std::shared_mutex> lk(st.mu);
  st.table.clear();
  st.file_loaded = false;
  st.has_override = false;
}

}  // namespace simd
}  // namespace tensor
}  // namespace automc
