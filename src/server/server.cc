#include "server/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/bytes.h"
#include "common/metrics.h"

namespace automc {
namespace server {

namespace {

Result<uint64_t> DecodeIdPayload(std::string_view payload) {
  ByteReader r(payload);
  uint64_t id = 0;
  if (!r.U64(&id) || !r.Done()) {
    return Status::InvalidArgument("malformed job-id payload");
  }
  return id;
}

}  // namespace

Result<std::unique_ptr<Server>> Server::Start(Options options) {
  std::string path = options.socket_path;
  if (path.empty()) {
    const char* env = std::getenv("AUTOMC_SOCKET");
    if (env != nullptr) path = env;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        "bad socket path '" + path +
        "' (set --socket or $AUTOMC_SOCKET; must fit in sun_path)");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  std::unique_ptr<Server> server(new Server());
  server->socket_path_ = path;
  AUTOMC_ASSIGN_OR_RETURN(server->jobs_,
                          JobManager::Open(std::move(options.jobs)));

  if (::pipe2(server->stop_pipe_, O_CLOEXEC) != 0) {
    return Status::Internal(std::string("pipe2: ") + std::strerror(errno));
  }
  server->listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (server->listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  // A socket file left by a killed server would make bind fail with
  // EADDRINUSE even though nobody is listening.
  ::unlink(path.c_str());
  if (::bind(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::Internal("bind " + path + ": " + std::strerror(errno));
  }
  if (::listen(server->listen_fd_, 16) != 0) {
    return Status::Internal("listen " + path + ": " + std::strerror(errno));
  }
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

Server::~Server() { Stop(); }

void Server::RequestStop() {
  if (stop_pipe_[1] < 0) return;
  const char byte = 's';
  // Async-signal-safe: one write(2), result deliberately ignored (a full
  // pipe means a stop is already pending).
  [[maybe_unused]] ssize_t ignored = ::write(stop_pipe_[1], &byte, 1);
}

void Server::AcceptLoop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // stop requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;
    }
    std::unique_lock<std::mutex> lock(conn_mu_);
    if (draining_) {
      ::close(fd);
      continue;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void Server::ServeConnection(int fd) {
  AUTOMC_METRIC_COUNT("server.connections");
  for (;;) {
    Result<Frame> frame = ReadFrame(fd);
    if (!frame.ok()) {
      // Garbage (bad magic / CRC / truncation) gets a best-effort error
      // frame; either way only THIS connection closes — the accept loop
      // and every other connection keep serving.
      if (frame.status().code() == StatusCode::kInvalidArgument) {
        (void)WriteFrame(fd, MsgType::kError, EncodeError(frame.status()));
        AUTOMC_METRIC_COUNT("server.bad_frames");
      }
      break;
    }
    AUTOMC_METRIC_COUNT("server.requests");

    MsgType reply_type = MsgType::kError;
    std::string reply;
    Status st;
    switch (static_cast<MsgType>(frame->type)) {
      case MsgType::kSubmitJob: {
        core::RunSpec spec;
        ByteReader r(frame->payload);
        if (!core::DecodeRunSpec(&r, &spec) || !r.Done()) {
          st = Status::InvalidArgument("malformed RunSpec payload");
          break;
        }
        Result<uint64_t> id = jobs_->Submit(spec);
        if (!id.ok()) {
          st = id.status();
          break;
        }
        ByteWriter w;
        w.U64(*id);
        reply_type = MsgType::kSubmitted;
        reply = w.Take();
        break;
      }
      case MsgType::kJobStatus: {
        Result<uint64_t> id = DecodeIdPayload(frame->payload);
        if (!id.ok()) {
          st = id.status();
          break;
        }
        Result<JobInfo> info = jobs_->Info(*id);
        if (!info.ok()) {
          st = info.status();
          break;
        }
        ByteWriter w;
        EncodeJobInfo(*info, &w);
        reply_type = MsgType::kStatus;
        reply = w.Take();
        break;
      }
      case MsgType::kCancelJob: {
        Result<uint64_t> id = DecodeIdPayload(frame->payload);
        st = id.ok() ? jobs_->Cancel(*id) : id.status();
        if (st.ok()) reply_type = MsgType::kOk;
        break;
      }
      case MsgType::kListJobs: {
        std::vector<JobInfo> infos = jobs_->List();
        ByteWriter w;
        w.U32(static_cast<uint32_t>(infos.size()));
        for (const JobInfo& info : infos) EncodeJobInfo(info, &w);
        reply_type = MsgType::kJobList;
        reply = w.Take();
        break;
      }
      case MsgType::kFetchOutcome: {
        Result<uint64_t> id = DecodeIdPayload(frame->payload);
        if (!id.ok()) {
          st = id.status();
          break;
        }
        Result<std::string> bytes = jobs_->OutcomeBytes(*id);
        if (!bytes.ok()) {
          st = bytes.status();
          break;
        }
        reply_type = MsgType::kOutcome;
        reply = *std::move(bytes);
        break;
      }
      case MsgType::kGetMetrics: {
        reply_type = MsgType::kMetrics;
        reply = metrics::MetricsRegistry::Global().ToJson();
        break;
      }
      default:
        st = Status::InvalidArgument("unknown request type " +
                                     std::to_string(frame->type));
    }
    if (reply_type == MsgType::kError) reply = EncodeError(st);
    // Request-level failures are replies, not connection errors: the peer
    // keeps its connection and can issue the next request.
    if (!WriteFrame(fd, reply_type, reply).ok()) break;
  }
  ::close(fd);
  std::unique_lock<std::mutex> lock(conn_mu_);
  conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                  conn_fds_.end());
}

void Server::Wait() {
  if (!accept_thread_.joinable()) return;
  accept_thread_.join();

  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(socket_path_.c_str());

  // Half-close every live connection: the reader sees EOF at its next frame
  // boundary, while the response to a frame already in flight still goes
  // out on the write side.
  std::vector<std::thread> threads;
  {
    std::unique_lock<std::mutex> lock(conn_mu_);
    draining_ = true;
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) t.join();

  // Checkpoint + durably re-queue running jobs, then flush metrics — the
  // same exit path automc_cli's signal handler uses.
  jobs_->Shutdown(/*drain=*/true);
  metrics::MetricsRegistry::Global().DumpIfConfigured();

  ::close(stop_pipe_[0]);
  ::close(stop_pipe_[1]);
  stop_pipe_[0] = stop_pipe_[1] = -1;
}

void Server::Stop() {
  RequestStop();
  Wait();
}

}  // namespace server
}  // namespace automc
