#include "server/server.h"

#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/metrics.h"
#include "common/net.h"
#include "server/artifact_stream.h"

namespace automc {
namespace server {

namespace {

Result<uint64_t> DecodeIdPayload(std::string_view payload) {
  ByteReader r(payload);
  uint64_t id = 0;
  if (!r.U64(&id) || !r.Done()) {
    return Status::InvalidArgument("malformed job-id payload");
  }
  return id;
}

Frame ErrorFrame(const Status& status) {
  Frame f;
  f.type = static_cast<uint32_t>(MsgType::kError);
  f.payload = EncodeError(status);
  return f;
}

Frame ReplyFrame(MsgType type, std::string payload) {
  Frame f;
  f.type = static_cast<uint32_t>(type);
  f.payload = std::move(payload);
  return f;
}

}  // namespace

namespace {

// Test-only fault injection for the ci.sh SLO gate: stall the dispatch
// thread this many milliseconds per request, inflating every op's tail
// latency the way an overloaded (or wedged) event loop would. Read once.
int FaultDelayMs() {
  static const int delay = [] {
    const char* env = std::getenv("AUTOMC_SERVER_FAULT_DELAY_MS");
    if (env == nullptr || *env == '\0') return 0;
    const int v = std::atoi(env);
    return v > 0 ? v : 0;
  }();
  return delay;
}

}  // namespace

Frame JobRequestHandler::Handle(uint64_t client, const Frame& request) {
  if (const int delay = FaultDelayMs(); delay > 0) {
    ::usleep(static_cast<useconds_t>(delay) * 1000);
  }
  switch (static_cast<MsgType>(request.type)) {
    case MsgType::kSubmitJob: {
      core::RunSpec spec;
      ByteReader r(request.payload);
      if (!core::DecodeRunSpec(&r, &spec) || !r.Done()) {
        return ErrorFrame(Status::InvalidArgument("malformed RunSpec payload"));
      }
      Result<uint64_t> id = jobs_->Submit(spec, client);
      if (!id.ok()) return ErrorFrame(id.status());
      ByteWriter w;
      w.U64(*id);
      return ReplyFrame(MsgType::kSubmitted, w.Take());
    }
    case MsgType::kSubmitWithId: {
      ByteReader r(request.payload);
      uint64_t id = 0;
      core::RunSpec spec;
      if (!r.U64(&id) || !core::DecodeRunSpec(&r, &spec) || !r.Done()) {
        return ErrorFrame(
            Status::InvalidArgument("malformed SubmitWithId payload"));
      }
      Result<uint64_t> got = jobs_->SubmitWithId(id, spec);
      if (!got.ok()) return ErrorFrame(got.status());
      ByteWriter w;
      w.U64(*got);
      return ReplyFrame(MsgType::kSubmitted, w.Take());
    }
    case MsgType::kJobStatus: {
      Result<uint64_t> id = DecodeIdPayload(request.payload);
      if (!id.ok()) return ErrorFrame(id.status());
      Result<JobInfo> info = jobs_->Info(*id);
      if (!info.ok()) return ErrorFrame(info.status());
      ByteWriter w;
      EncodeJobInfo(*info, &w);
      return ReplyFrame(MsgType::kStatus, w.Take());
    }
    case MsgType::kCancelJob: {
      Result<uint64_t> id = DecodeIdPayload(request.payload);
      Status st = id.ok() ? jobs_->Cancel(*id) : id.status();
      if (!st.ok()) return ErrorFrame(st);
      return ReplyFrame(MsgType::kOk, "");
    }
    case MsgType::kListJobs: {
      std::vector<JobInfo> infos = jobs_->List();
      ByteWriter w;
      w.U32(static_cast<uint32_t>(infos.size()));
      for (const JobInfo& info : infos) EncodeJobInfo(info, &w);
      return ReplyFrame(MsgType::kJobList, w.Take());
    }
    case MsgType::kFetchOutcome: {
      Result<uint64_t> id = DecodeIdPayload(request.payload);
      if (!id.ok()) return ErrorFrame(id.status());
      Result<std::string> bytes = jobs_->OutcomeBytes(*id);
      if (!bytes.ok()) return ErrorFrame(bytes.status());
      return ReplyFrame(MsgType::kOutcome, *std::move(bytes));
    }
    case MsgType::kGetMetrics: {
      if (!request.payload.empty()) {
        // A u32 worker id only means something to the fleet coordinator.
        return ErrorFrame(Status::FailedPrecondition(
            "per-worker metrics need a fleet coordinator"));
      }
      return ReplyFrame(MsgType::kMetrics,
                        metrics::MetricsRegistry::Global().ToJson());
    }
    case MsgType::kFetchModel:
      // Only reachable on a blocking transport (the fleet worker control
      // channel); the event loop intercepts this type via HandleStream.
      return FetchModelBlockingReply(jobs_->registry(), request);
    case MsgType::kListArtifacts:
      return ArtifactListReply(jobs_->registry());
    default:
      return ErrorFrame(Status::InvalidArgument(
          "unknown request type " + std::to_string(request.type)));
  }
}

std::unique_ptr<fleet::ReplyStream> JobRequestHandler::HandleStream(
    uint64_t client, const Frame& request) {
  (void)client;
  if (static_cast<MsgType>(request.type) != MsgType::kFetchModel) {
    return nullptr;
  }
  ByteReader r(request.payload);
  std::string name;
  if (!r.Str(&name) || !r.Done()) return nullptr;  // Handle() answers kError
  return MakeModelStream(jobs_->registry(), std::move(name));
}

Result<std::unique_ptr<Server>> Server::Start(Options options) {
  std::string path = options.socket_path;
  if (path.empty()) {
    const char* env = std::getenv("AUTOMC_SOCKET");
    if (env != nullptr) path = env;
  }
  if (path.empty()) {
    return Status::InvalidArgument(
        "bad socket path '' (set --socket or $AUTOMC_SOCKET)");
  }
  std::string tcp = options.tcp_address;
  if (tcp.empty()) {
    const char* env = std::getenv("AUTOMC_TCP");
    if (env != nullptr) tcp = env;
  }
  int idle_s = options.idle_timeout_s;
  if (idle_s < 0) {
    idle_s = 0;
    if (const char* env = std::getenv("AUTOMC_SERVER_IDLE_TIMEOUT");
        env != nullptr && *env != '\0') {
      idle_s = std::atoi(env);
      if (idle_s < 0) idle_s = 0;
    }
  }

  std::unique_ptr<Server> server(new Server());
  server->socket_path_ = path;
  fleet::RequestHandler* handler = options.handler;
  if (handler == nullptr) {
    AUTOMC_ASSIGN_OR_RETURN(server->jobs_,
                            JobManager::Open(std::move(options.jobs)));
    server->default_handler_ =
        std::make_unique<JobRequestHandler>(server->jobs_.get());
    handler = server->default_handler_.get();
  }

  fleet::EventLoop::Options loop_opts;
  loop_opts.handler = handler;
  loop_opts.idle_timeout_s = idle_s;
  AUTOMC_ASSIGN_OR_RETURN(int unix_fd, net::ListenUnix(path, 128));
  loop_opts.listen_fds.push_back(unix_fd);
  if (!tcp.empty()) {
    Result<int> tcp_fd = net::ListenTcp(tcp, 128);
    if (!tcp_fd.ok()) {
      ::close(unix_fd);
      return tcp_fd.status();
    }
    // Resolve "tcp:HOST:0" to the kernel-assigned port so callers can
    // actually connect.
    Result<std::string> bound = net::LocalAddress(*tcp_fd);
    if (!bound.ok()) {
      ::close(unix_fd);
      ::close(*tcp_fd);
      return bound.status();
    }
    server->tcp_address_ = *bound;
    loop_opts.listen_fds.push_back(*tcp_fd);
  }
  AUTOMC_ASSIGN_OR_RETURN(server->loop_,
                          fleet::EventLoop::Start(std::move(loop_opts)));
  return server;
}

Server::~Server() { Stop(); }

void Server::RequestStop() {
  if (loop_ != nullptr) loop_->RequestStop();
}

void Server::Wait() {
  if (loop_ == nullptr || stopped_) return;
  loop_->Wait();
  stopped_ = true;
  ::unlink(socket_path_.c_str());
  // Checkpoint + durably re-queue running jobs, then flush metrics — the
  // same exit path automc_cli's signal handler uses.
  if (jobs_ != nullptr) jobs_->Shutdown(/*drain=*/true);
  metrics::MetricsRegistry::Global().DumpIfConfigured();
}

void Server::Stop() {
  RequestStop();
  Wait();
}

}  // namespace server
}  // namespace automc
