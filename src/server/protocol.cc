#include "server/protocol.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/bytes.h"
#include "common/net.h"
#include "common/sha256.h"

namespace automc {
namespace server {

namespace {

// Blocks until `fd` is ready for `events` (POLLIN/POLLOUT); EINTR-safe.
// Lets the byte-level loops below behave blockingly on O_NONBLOCK sockets:
// a nonblocking fd handed to ReadFrame/WriteFrame never tears a frame.
Status PollFor(int fd, short events) {
  pollfd p{fd, events, 0};
  for (;;) {
    if (::poll(&p, 1, -1) >= 0) return Status::OK();
    if (errno == EINTR) continue;
    return Status::Internal(std::string("socket poll: ") +
                            std::strerror(errno));
  }
}

// write(2) until done; EINTR- and EAGAIN-safe. A peer that disappears
// mid-write surfaces as Internal (EPIPE is suppressed to a status, not a
// signal — callers must have SIGPIPE ignored or use MSG_NOSIGNAL-
// equivalent; automc_serve and the CLI both ignore SIGPIPE at startup).
Status WriteAll(int fd, const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    ssize_t written = ::write(fd, p, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        AUTOMC_RETURN_IF_ERROR(PollFor(fd, POLLOUT));
        continue;
      }
      return Status::Internal(std::string("socket write: ") +
                              std::strerror(errno));
    }
    p += written;
    n -= static_cast<size_t>(written);
  }
  return Status::OK();
}

// read(2) a full buffer, looping over short reads, EINTR, and (on
// nonblocking sockets) EAGAIN. `*eof` is set (and OK returned) only when
// EOF hits at offset 0; EOF mid-buffer is a truncated frame.
Status ReadAll(int fd, void* data, size_t n, bool* eof) {
  *eof = false;
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        AUTOMC_RETURN_IF_ERROR(PollFor(fd, POLLIN));
        continue;
      }
      return Status::Internal(std::string("socket read: ") +
                              std::strerror(errno));
    }
    if (r == 0) {
      if (got == 0) {
        *eof = true;
        return Status::OK();
      }
      return Status::InvalidArgument("truncated frame: EOF mid-frame");
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

uint32_t FrameCrc(uint32_t type, uint32_t size, std::string_view payload) {
  uint32_t crc = Crc32(&type, sizeof(type));
  crc = Crc32(&size, sizeof(size), crc);
  return Crc32(payload.data(), payload.size(), crc);
}

}  // namespace

std::string EncodeFrame(MsgType type, std::string_view payload) {
  const uint32_t type_u = static_cast<uint32_t>(type);
  const uint32_t size = static_cast<uint32_t>(payload.size());
  ByteWriter w;
  w.U32(kFrameMagic);
  w.U32(type_u);
  w.U32(size);
  w.Raw(payload.data(), payload.size());
  w.U32(FrameCrc(type_u, size, payload));
  return w.Take();
}

Status WriteFrame(int fd, MsgType type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload too large");
  }
  std::string bytes = EncodeFrame(type, payload);
  return WriteAll(fd, bytes.data(), bytes.size());
}

Result<Frame> ReadFrame(int fd) {
  uint32_t header[3];
  bool eof = false;
  AUTOMC_RETURN_IF_ERROR(ReadAll(fd, header, sizeof(header), &eof));
  if (eof) return Status::NotFound("connection closed");
  if (header[0] != kFrameMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  if (header[2] > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload too large");
  }
  Frame frame;
  frame.type = header[1];
  frame.payload.resize(header[2]);
  if (!frame.payload.empty()) {
    AUTOMC_RETURN_IF_ERROR(
        ReadAll(fd, frame.payload.data(), frame.payload.size(), &eof));
    if (eof) return Status::InvalidArgument("truncated frame: EOF mid-frame");
  }
  uint32_t crc = 0;
  AUTOMC_RETURN_IF_ERROR(ReadAll(fd, &crc, sizeof(crc), &eof));
  if (eof) return Status::InvalidArgument("truncated frame: EOF mid-frame");
  if (crc != FrameCrc(frame.type, header[2], frame.payload)) {
    return Status::InvalidArgument("frame CRC mismatch");
  }
  return frame;
}

void FrameDecoder::Feed(const char* data, size_t n) {
  if (!error_.ok()) return;  // poisoned: framing is lost, don't buffer more
  // Compact the consumed prefix before it dominates the buffer.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

FrameDecoder::Event FrameDecoder::Next(Frame* out, Status* error) {
  if (!error_.ok()) {
    *error = error_;
    return Event::kError;
  }
  const size_t avail = buf_.size() - pos_;
  if (avail < 12) return Event::kNeedMore;
  uint32_t header[3];
  std::memcpy(header, buf_.data() + pos_, sizeof(header));
  if (header[0] != kFrameMagic) {
    error_ = Status::InvalidArgument("bad frame magic");
    *error = error_;
    return Event::kError;
  }
  if (header[2] > kMaxFramePayload) {
    error_ = Status::InvalidArgument(
        "frame payload too large: " + std::to_string(header[2]) +
        " bytes exceeds the " + std::to_string(kMaxFramePayload) +
        "-byte cap");
    *error = error_;
    return Event::kError;
  }
  const size_t total = 12 + static_cast<size_t>(header[2]) + 4;
  if (avail < total) return Event::kNeedMore;
  std::string_view payload(buf_.data() + pos_ + 12, header[2]);
  uint32_t crc = 0;
  std::memcpy(&crc, buf_.data() + pos_ + 12 + header[2], sizeof(crc));
  if (crc != FrameCrc(header[1], header[2], payload)) {
    error_ = Status::InvalidArgument("frame CRC mismatch");
    *error = error_;
    return Event::kError;
  }
  out->type = header[1];
  out->payload.assign(payload);
  pos_ += total;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return Event::kFrame;
}

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "QUEUED";
    case JobState::kRunning:
      return "RUNNING";
    case JobState::kDone:
      return "DONE";
    case JobState::kFailed:
      return "FAILED";
    case JobState::kCancelled:
      return "CANCELLED";
  }
  return "UNKNOWN";
}

bool JobStateIsTerminal(JobState state) {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

bool ParseJobState(std::string_view name, JobState* state) {
  for (JobState s :
       {JobState::kQueued, JobState::kRunning, JobState::kDone,
        JobState::kFailed, JobState::kCancelled}) {
    if (name == JobStateName(s)) {
      *state = s;
      return true;
    }
  }
  return false;
}

void EncodeJobInfo(const JobInfo& info, ByteWriter* w) {
  w->U64(info.id);
  w->U32(static_cast<uint32_t>(info.state));
  w->Str(info.summary);
  w->Str(info.error);
  w->I32(info.executions);
}

bool DecodeJobInfo(ByteReader* r, JobInfo* info) {
  uint32_t state = 0;
  if (!r->U64(&info->id) || !r->U32(&state) || state > 4 ||
      !r->Str(&info->summary) || !r->Str(&info->error) ||
      !r->I32(&info->executions)) {
    return false;
  }
  info->state = static_cast<JobState>(state);
  return true;
}

std::string EncodeError(const Status& status) {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(status.code()));
  w.Str(status.message());
  return w.Take();
}

Status DecodeError(std::string_view payload) {
  ByteReader r(payload);
  uint32_t code = 0;
  std::string message;
  if (!r.U32(&code) || !r.Str(&message) ||
      code > static_cast<uint32_t>(StatusCode::kDataLoss) || code == 0) {
    return Status::Internal("malformed error frame from server");
  }
  return Status(static_cast<StatusCode>(code), std::move(message));
}

void EncodeArtifactInfo(const ArtifactInfo& info, ByteWriter* w) {
  w->Str(info.name);
  w->U64(info.total_size);
  w->Raw(info.blob_digest.data(), info.blob_digest.size());
  w->U32(info.chunk_count);
  w->U64(info.job_id);
  w->Str(info.scheme);
  w->Str(info.summary);
  w->F64(info.acc);
  w->I64(info.params);
  w->I64(info.flops);
}

bool DecodeArtifactInfo(ByteReader* r, ArtifactInfo* info) {
  return r->Str(&info->name) && r->U64(&info->total_size) &&
         r->Raw(info->blob_digest.data(), info->blob_digest.size()) &&
         r->U32(&info->chunk_count) && r->U64(&info->job_id) &&
         r->Str(&info->scheme) && r->Str(&info->summary) &&
         r->F64(&info->acc) && r->I64(&info->params) && r->I64(&info->flops);
}

Result<Client> Client::Connect(const std::string& address) {
  AUTOMC_ASSIGN_OR_RETURN(int fd, net::ConnectAddress(address));
  return Client(fd);
}

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Result<Frame> Client::Call(MsgType type, std::string_view payload) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  AUTOMC_RETURN_IF_ERROR(WriteFrame(fd_, type, payload));
  AUTOMC_ASSIGN_OR_RETURN(Frame reply, ReadFrame(fd_));
  if (reply.type == static_cast<uint32_t>(MsgType::kError)) {
    return DecodeError(reply.payload);
  }
  return reply;
}

namespace {

Result<Frame> ExpectType(Result<Frame> reply, MsgType want) {
  if (!reply.ok()) return reply;
  if (reply->type != static_cast<uint32_t>(want)) {
    return Status::Internal("unexpected response frame type " +
                            std::to_string(reply->type));
  }
  return reply;
}

}  // namespace

Result<uint64_t> Client::Submit(const core::RunSpec& spec) {
  ByteWriter w;
  core::EncodeRunSpec(spec, &w);
  AUTOMC_ASSIGN_OR_RETURN(
      Frame reply, ExpectType(Call(MsgType::kSubmitJob, w.str()),
                              MsgType::kSubmitted));
  ByteReader r(reply.payload);
  uint64_t id = 0;
  if (!r.U64(&id) || !r.Done()) {
    return Status::Internal("malformed submit response");
  }
  return id;
}

namespace {

std::string IdPayload(uint64_t id) {
  ByteWriter w;
  w.U64(id);
  return w.Take();
}

}  // namespace

Result<JobInfo> Client::JobStatus(uint64_t id) {
  AUTOMC_ASSIGN_OR_RETURN(
      Frame reply,
      ExpectType(Call(MsgType::kJobStatus, IdPayload(id)), MsgType::kStatus));
  ByteReader r(reply.payload);
  JobInfo info;
  if (!DecodeJobInfo(&r, &info) || !r.Done()) {
    return Status::Internal("malformed status response");
  }
  return info;
}

Status Client::Cancel(uint64_t id) {
  return ExpectType(Call(MsgType::kCancelJob, IdPayload(id)), MsgType::kOk)
      .status();
}

Result<std::vector<JobInfo>> Client::ListJobs() {
  AUTOMC_ASSIGN_OR_RETURN(
      Frame reply, ExpectType(Call(MsgType::kListJobs, {}), MsgType::kJobList));
  ByteReader r(reply.payload);
  uint32_t count = 0;
  if (!r.U32(&count)) return Status::Internal("malformed job list");
  std::vector<JobInfo> jobs(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!DecodeJobInfo(&r, &jobs[i])) {
      return Status::Internal("malformed job list entry");
    }
  }
  if (!r.Done()) return Status::Internal("trailing bytes in job list");
  return jobs;
}

Result<std::string> Client::FetchOutcomeBytes(uint64_t id) {
  AUTOMC_ASSIGN_OR_RETURN(
      Frame reply, ExpectType(Call(MsgType::kFetchOutcome, IdPayload(id)),
                              MsgType::kOutcome));
  return std::move(reply.payload);
}

Result<std::string> Client::Metrics() {
  AUTOMC_ASSIGN_OR_RETURN(
      Frame reply,
      ExpectType(Call(MsgType::kGetMetrics, {}), MsgType::kMetrics));
  return std::move(reply.payload);
}

Result<ArtifactInfo> Client::FetchModel(const std::string& name,
                                        const ChunkSink& sink) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  ByteWriter req;
  req.Str(name);
  AUTOMC_RETURN_IF_ERROR(WriteFrame(fd_, MsgType::kFetchModel, req.str()));

  AUTOMC_ASSIGN_OR_RETURN(Frame head, ReadFrame(fd_));
  if (head.type == static_cast<uint32_t>(MsgType::kError)) {
    return DecodeError(head.payload);
  }
  if (head.type != static_cast<uint32_t>(MsgType::kModelStart)) {
    return Status::Internal("expected ModelStart, got frame type " +
                            std::to_string(head.type));
  }
  ByteReader hr(head.payload);
  ArtifactInfo info;
  if (!DecodeArtifactInfo(&hr, &info) || !hr.Done()) {
    return Status::Internal("malformed ModelStart payload");
  }

  Sha256 hasher;
  uint64_t received = 0;
  uint32_t chunks = 0;
  for (;;) {
    AUTOMC_ASSIGN_OR_RETURN(Frame frame, ReadFrame(fd_));
    if (frame.type == static_cast<uint32_t>(MsgType::kModelChunk)) {
      ++chunks;
      received += frame.payload.size();
      if (received > info.total_size || chunks > info.chunk_count) {
        return Status::DataLoss("server streamed more model bytes than "
                                "announced for '" + name + "'");
      }
      hasher.Update(frame.payload.data(), frame.payload.size());
      AUTOMC_RETURN_IF_ERROR(sink(frame.payload));
      continue;
    }
    if (frame.type == static_cast<uint32_t>(MsgType::kError)) {
      // Mid-stream failure (e.g. a chunk failed verification server-side):
      // the stream is over and whatever the sink wrote must be discarded.
      return DecodeError(frame.payload);
    }
    if (frame.type != static_cast<uint32_t>(MsgType::kModelEnd)) {
      return Status::Internal("unexpected frame type " +
                              std::to_string(frame.type) +
                              " inside a model stream");
    }
    ByteReader er(frame.payload);
    uint64_t total = 0;
    Sha256Digest end_digest{};
    if (!er.U64(&total) || !er.Raw(end_digest.data(), end_digest.size()) ||
        !er.Done()) {
      return Status::Internal("malformed ModelEnd payload");
    }
    const Sha256Digest got = hasher.Finish();
    if (total != info.total_size || received != total ||
        chunks != info.chunk_count ||
        std::memcmp(end_digest.data(), info.blob_digest.data(), 32) != 0 ||
        got != end_digest) {
      return Status::DataLoss("fetched model '" + name +
                              "' failed end-to-end verification");
    }
    return info;
  }
}

Status WriteStreamToFile(
    const std::string& path,
    const std::function<Status(const Client::ChunkSink&)>& produce) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::Internal("cannot write " + tmp);
  Status st = produce([f, &tmp](std::string_view chunk) -> Status {
    if (std::fwrite(chunk.data(), 1, chunk.size(), f) != chunk.size()) {
      return Status::Internal("short write on " + tmp);
    }
    return Status::OK();
  });
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (!st.ok() || !flushed) {
    std::remove(tmp.c_str());
    if (!st.ok()) return st;
    return Status::Internal("short write on " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + " into place");
  }
  return Status::OK();
}

Result<ArtifactInfo> Client::FetchModelToFile(const std::string& name,
                                              const std::string& path) {
  ArtifactInfo info;
  AUTOMC_RETURN_IF_ERROR(
      WriteStreamToFile(path, [&](const ChunkSink& sink) -> Status {
        AUTOMC_ASSIGN_OR_RETURN(info, FetchModel(name, sink));
        return Status::OK();
      }));
  return info;
}

Status Client::FetchOutcomeToSink(uint64_t id, const ChunkSink& sink) {
  AUTOMC_ASSIGN_OR_RETURN(
      Frame reply, ExpectType(Call(MsgType::kFetchOutcome, IdPayload(id)),
                              MsgType::kOutcome));
  return sink(reply.payload);
}

Status Client::FetchOutcomeToFile(uint64_t id, const std::string& path) {
  return WriteStreamToFile(path, [&](const ChunkSink& sink) {
    return FetchOutcomeToSink(id, sink);
  });
}

Result<std::vector<ArtifactInfo>> Client::ListArtifacts() {
  AUTOMC_ASSIGN_OR_RETURN(
      Frame reply, ExpectType(Call(MsgType::kListArtifacts, {}),
                              MsgType::kArtifactList));
  ByteReader r(reply.payload);
  uint32_t count = 0;
  if (!r.U32(&count)) return Status::Internal("malformed artifact list");
  std::vector<ArtifactInfo> out(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!DecodeArtifactInfo(&r, &out[i])) {
      return Status::Internal("malformed artifact list entry");
    }
  }
  if (!r.Done()) return Status::Internal("trailing bytes in artifact list");
  return out;
}

}  // namespace server
}  // namespace automc
