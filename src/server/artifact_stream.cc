#include "server/artifact_stream.h"

#include <utility>

#include "common/bytes.h"
#include "common/metrics.h"

namespace automc {
namespace server {

namespace {

Frame MakeFrame(MsgType type, std::string payload) {
  Frame f;
  f.type = static_cast<uint32_t>(type);
  f.payload = std::move(payload);
  return f;
}

// Stream state machine: Start -> Chunks... -> End. Any failure emits one
// kError frame and jumps to Done; the client treats a mid-stream kError as
// the end of the (discarded) stream, and framing stays intact for the next
// request on the connection.
class ModelStream : public fleet::ReplyStream {
 public:
  ModelStream(artifact::Registry* registry, std::string name)
      : registry_(registry), name_(std::move(name)) {}

  bool Next(Frame* out) override {
    switch (stage_) {
      case Stage::kStart: {
        if (registry_ == nullptr) {
          return Fail(out,
                      Status::FailedPrecondition("no artifact registry"));
        }
        Result<artifact::Manifest> m = registry_->GetManifest(name_);
        if (!m.ok()) return Fail(out, m.status());
        manifest_ = std::move(*m);
        AUTOMC_METRIC_COUNT("server.model_streams");
        ByteWriter w;
        EncodeArtifactInfo(InfoFromManifest(manifest_), &w);
        *out = MakeFrame(MsgType::kModelStart, w.Take());
        stage_ = Stage::kChunks;
        return true;
      }
      case Stage::kChunks: {
        if (next_chunk_ == manifest_.chunks.size()) {
          ByteWriter w;
          w.U64(manifest_.total_size);
          w.Raw(manifest_.blob_digest.data(), manifest_.blob_digest.size());
          *out = MakeFrame(MsgType::kModelEnd, w.Take());
          stage_ = Stage::kDone;
          return true;
        }
        Result<std::string> chunk =
            registry_->chunks()->GetChunk(manifest_.chunks[next_chunk_]);
        if (!chunk.ok()) return Fail(out, chunk.status());
        ++next_chunk_;
        AUTOMC_METRIC_COUNT("server.model_bytes_sent",
                            static_cast<int64_t>(chunk->size()));
        *out = MakeFrame(MsgType::kModelChunk, *std::move(chunk));
        return true;
      }
      case Stage::kDone:
        return false;
    }
    return false;
  }

 private:
  enum class Stage { kStart, kChunks, kDone };

  bool Fail(Frame* out, const Status& status) {
    AUTOMC_METRIC_COUNT("server.model_stream_errors");
    *out = MakeFrame(MsgType::kError, EncodeError(status));
    stage_ = Stage::kDone;
    return true;
  }

  artifact::Registry* registry_;
  std::string name_;
  artifact::Manifest manifest_;
  size_t next_chunk_ = 0;
  Stage stage_ = Stage::kStart;
};

}  // namespace

ArtifactInfo InfoFromManifest(const artifact::Manifest& m) {
  ArtifactInfo info;
  info.name = m.name;
  info.total_size = m.total_size;
  info.blob_digest = m.blob_digest;
  info.chunk_count = static_cast<uint32_t>(m.chunks.size());
  info.job_id = m.prov.job_id;
  info.scheme = m.prov.scheme;
  info.summary = m.prov.summary;
  info.acc = m.prov.acc;
  info.params = m.prov.params;
  info.flops = m.prov.flops;
  return info;
}

std::unique_ptr<fleet::ReplyStream> MakeModelStream(
    artifact::Registry* registry, std::string name) {
  return std::make_unique<ModelStream>(registry, std::move(name));
}

Frame ArtifactListReply(artifact::Registry* registry) {
  if (registry == nullptr) {
    return MakeFrame(MsgType::kError,
                     EncodeError(Status::FailedPrecondition(
                         "no artifact registry")));
  }
  const std::vector<artifact::Manifest> manifests = registry->List();
  ByteWriter w;
  w.U32(static_cast<uint32_t>(manifests.size()));
  for (const artifact::Manifest& m : manifests) {
    EncodeArtifactInfo(InfoFromManifest(m), &w);
  }
  return MakeFrame(MsgType::kArtifactList, w.Take());
}

Frame FetchModelBlockingReply(artifact::Registry* registry,
                              const Frame& request) {
  ByteReader r(request.payload);
  std::string name;
  if (!r.Str(&name) || !r.Done()) {
    return MakeFrame(MsgType::kError,
                     EncodeError(Status::InvalidArgument(
                         "malformed FetchModel payload")));
  }
  if (registry == nullptr || !registry->GetManifest(name).ok()) {
    return MakeFrame(MsgType::kError,
                     EncodeError(Status::NotFound("no artifact '" + name +
                                                  "'")));
  }
  return MakeFrame(MsgType::kError,
                   EncodeError(Status::Unimplemented(
                       "FetchModel requires the streaming transport")));
}

}  // namespace server
}  // namespace automc
