#ifndef AUTOMC_SERVER_ARTIFACT_STREAM_H_
#define AUTOMC_SERVER_ARTIFACT_STREAM_H_

#include <memory>
#include <string>

#include "artifact/manifest.h"
#include "fleet/event_loop.h"
#include "server/protocol.h"

namespace automc {
namespace server {

// The wire metadata a Manifest denotes (chunk digests stay server-side).
ArtifactInfo InfoFromManifest(const artifact::Manifest& m);

// A ReplyStream serving one FetchModel request from the registry:
// kModelStart, one kModelChunk per stored chunk, kModelEnd. Every chunk is
// integrity-verified by the ChunkStore on the way out; a failure (missing
// artifact, corrupt chunk) becomes a single kError frame — a corrupt model
// is never partially served as if it were whole. Frames are pulled one at
// a time by the event loop, so memory stays bounded by the transport's
// write watermark regardless of model size. `registry` may be null (the
// stream reports FailedPrecondition) and must otherwise outlive the
// stream.
std::unique_ptr<fleet::ReplyStream> MakeModelStream(
    artifact::Registry* registry, std::string name);

// The kArtifactList reply (or kError) for a ListArtifacts request.
Frame ArtifactListReply(artifact::Registry* registry);

// Shared by every transport's kFetchModel *blocking* path: the streaming
// reply only exists on the event loop, so the blocking dispatch answers
// with a typed error — NotFound when the artifact does not exist (so a
// probing client learns the useful fact) and Unimplemented otherwise.
Frame FetchModelBlockingReply(artifact::Registry* registry,
                              const Frame& request);

}  // namespace server
}  // namespace automc

#endif  // AUTOMC_SERVER_ARTIFACT_STREAM_H_
