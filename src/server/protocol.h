#ifndef AUTOMC_SERVER_PROTOCOL_H_
#define AUTOMC_SERVER_PROTOCOL_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/run_spec.h"
#include "search/searcher.h"

namespace automc {
namespace server {

// Length-prefixed, CRC32-framed binary wire protocol of automc_serve
// (docs/server.md has the byte-level layout). Every frame is
//
//   u32 magic "AMCS"  |  u32 type  |  u32 payload_size  |  payload bytes
//   |  u32 crc32(type || payload_size || payload)
//
// little-endian throughout (the ByteWriter/ByteReader encoding the
// persistence layer already uses). The CRC turns a torn or corrupted frame
// into a clean protocol error instead of a misparsed request, and the
// explicit size bound rejects garbage before any allocation.

constexpr uint32_t kFrameMagic = 0x53434D41;  // "AMCS" read little-endian
constexpr uint32_t kMaxFramePayload = 64u << 20;

enum class MsgType : uint32_t {
  // Requests.
  kSubmitJob = 1,     // payload: EncodeRunSpec
  kJobStatus = 2,     // payload: u64 job id
  kCancelJob = 3,     // payload: u64 job id
  kListJobs = 4,      // payload: empty
  kFetchOutcome = 5,  // payload: u64 job id
  kGetMetrics = 6,    // payload: empty, or u32 worker id (fleet mode: that
                      // worker process's registry instead of the frontend's)
  // Internal coordinator -> worker control channel: submit under a
  // coordinator-assigned global job id. Payload: u64 id, EncodeRunSpec.
  // Idempotent — resending after a worker respawn re-acknowledges the same
  // id as long as the spec bytes match.
  kSubmitWithId = 7,
  // Artifact registry (docs/artifacts.md). FetchModel is the one
  // multi-frame reply in the protocol: kModelStart, then one kModelChunk
  // per stored chunk, then kModelEnd — so a model of any size streams
  // through the transport's write watermarks instead of materializing as
  // one giant frame.
  kFetchModel = 8,     // payload: str artifact name
  kListArtifacts = 9,  // payload: empty
  // Responses.
  kOk = 100,        // payload: empty (CancelJob ack)
  kSubmitted = 101, // payload: u64 job id
  kStatus = 102,    // payload: EncodeJobInfo
  kJobList = 103,   // payload: u32 count, count * EncodeJobInfo
  kOutcome = 104,   // payload: search::SaveOutcomeBytes
  kMetrics = 105,   // payload: metrics JSON (UTF-8 text)
  kModelStart = 106,   // payload: EncodeArtifactInfo
  kModelChunk = 107,   // payload: raw chunk bytes
  kModelEnd = 108,     // payload: u64 total size, 32-byte SHA-256 of blob
  kArtifactList = 109, // payload: u32 count, count * EncodeArtifactInfo
  kError = 200,     // payload: u32 StatusCode, str message
};

struct Frame {
  uint32_t type = 0;
  std::string payload;
};

// Blocking full-frame I/O on a connected socket. ReadFrame distinguishes
//   * NotFound         — clean EOF at a frame boundary (peer closed);
//   * InvalidArgument  — garbage: bad magic, oversized payload, CRC
//                        mismatch, or EOF mid-frame;
//   * Internal         — transport error (errno-level read/write failure).
// Both tolerate short reads/writes and EINTR, and — via poll(2) on
// EAGAIN/EWOULDBLOCK — behave blockingly even on an O_NONBLOCK socket, so
// a frame is never torn by nonblocking-mode reads.
Status WriteFrame(int fd, MsgType type, std::string_view payload);
Result<Frame> ReadFrame(int fd);

// The exact bytes WriteFrame puts on the wire, for transports that manage
// their own buffering (the epoll event loop). Caller enforces the payload
// cap.
std::string EncodeFrame(MsgType type, std::string_view payload);

// Incremental frame parser for nonblocking transports (the epoll event
// loop). Feed() appends whatever bytes arrived; Next() pops completed
// frames. A protocol violation (bad magic, payload over kMaxFramePayload,
// CRC mismatch) poisons the decoder: Next() returns kError with the
// violation, permanently — the connection has lost framing and must close.
class FrameDecoder {
 public:
  enum class Event {
    kNeedMore,  // no complete frame buffered
    kFrame,     // *out was filled
    kError,     // *error was filled; the decoder is dead
  };

  void Feed(const char* data, size_t n);
  Event Next(Frame* out, Status* error);

  // True while a frame is partially buffered (EOF here = torn frame).
  bool mid_frame() const { return error_.ok() && pos_ < buf_.size(); }

 private:
  std::string buf_;
  size_t pos_ = 0;  // parse cursor; consumed prefix is compacted lazily
  Status error_;
};

// Durable job lifecycle: QUEUED -> RUNNING -> {DONE, FAILED, CANCELLED}.
// A killed server re-queues QUEUED/RUNNING jobs on restart (RUNNING ones
// resume from their last checkpoint), so the two non-terminal states are
// exactly the ones recovery re-enters.
enum class JobState : uint32_t {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,
  kFailed = 3,
  kCancelled = 4,
};

const char* JobStateName(JobState state);
bool JobStateIsTerminal(JobState state);
// Inverse of JobStateName; false on unknown names.
bool ParseJobState(std::string_view name, JobState* state);

// One job's externally visible status.
struct JobInfo {
  uint64_t id = 0;
  JobState state = JobState::kQueued;
  std::string summary;     // RunSpecSummary(spec)
  std::string error;       // FAILED: the search's status message
  int32_t executions = -1; // outcome.executions once DONE, else -1
};

void EncodeJobInfo(const JobInfo& info, ByteWriter* w);
bool DecodeJobInfo(ByteReader* r, JobInfo* info);

// Error-frame payload <-> Status.
std::string EncodeError(const Status& status);
Status DecodeError(std::string_view payload);

// One published model artifact as seen on the wire (a Manifest minus the
// chunk digests, which are a storage detail the client never needs).
struct ArtifactInfo {
  std::string name;
  uint64_t total_size = 0;
  std::array<uint8_t, 32> blob_digest{};
  uint32_t chunk_count = 0;
  uint64_t job_id = 0;
  std::string scheme;   // core::ParseSchemeIndices format
  std::string summary;
  double acc = 0.0;
  int64_t params = 0;
  int64_t flops = 0;
};

void EncodeArtifactInfo(const ArtifactInfo& info, ByteWriter* w);
bool DecodeArtifactInfo(ByteReader* r, ArtifactInfo* info);

// Blocking client for the automc_serve socket, used by the automc_cli
// --serve-* subcommands, the tests, and the throughput bench. One request
// in flight at a time per client; not thread-safe.
class Client {
 public:
  // `address` is a unix socket path, or "tcp:HOST:PORT" for the daemon's
  // TCP listener (see common/net.h for the address convention).
  static Result<Client> Connect(const std::string& address);
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  Result<uint64_t> Submit(const core::RunSpec& spec);
  Result<JobInfo> JobStatus(uint64_t id);
  Status Cancel(uint64_t id);
  Result<std::vector<JobInfo>> ListJobs();
  // The raw SaveOutcomeBytes payload — callers needing the struct decode it
  // with search::LoadOutcomeBytes; identity tests compare the bytes.
  Result<std::string> FetchOutcomeBytes(uint64_t id);
  Result<std::string> Metrics();

  // Streams a published model: `sink` is called once per chunk, in order.
  // The assembled bytes are verified against the announced size and SHA-256
  // before success is returned; any mismatch (or a server-side kError mid
  // stream) surfaces as a typed error and the sink's output must be
  // discarded. Returns the artifact's wire metadata.
  using ChunkSink = std::function<Status(std::string_view chunk)>;
  Result<ArtifactInfo> FetchModel(const std::string& name,
                                  const ChunkSink& sink);
  // FetchModel into a file (written atomically: tmp + rename on success).
  Result<ArtifactInfo> FetchModelToFile(const std::string& name,
                                        const std::string& path);
  Result<std::vector<ArtifactInfo>> ListArtifacts();

  // Streams a job's raw outcome payload (SaveOutcomeBytes format) through
  // `sink` instead of materializing an extra copy; same sink contract as
  // FetchModel, so --serve-result and --serve-fetch-model share one
  // write-to-file path.
  Status FetchOutcomeToSink(uint64_t id, const ChunkSink& sink);
  // FetchOutcomeToSink into a file (atomically: tmp + rename on success).
  Status FetchOutcomeToFile(uint64_t id, const std::string& path);

  // One raw round-trip (tests use this to probe protocol edges).
  Result<Frame> Call(MsgType type, std::string_view payload);

 private:
  explicit Client(int fd) : fd_(fd) {}
  int fd_ = -1;
};

// The atomic file sink behind every streaming *ToFile fetch: opens
// `path`.tmp, hands `produce` a ChunkSink appending to it, and renames into
// place only on a fully verified stream + clean flush; any failure removes
// the temp file so a torn download never looks like a model. Exposed so
// callers composing their own fetches (tests, tools) reuse the exact
// tmp+rename discipline.
Status WriteStreamToFile(
    const std::string& path,
    const std::function<Status(const Client::ChunkSink&)>& produce);

}  // namespace server
}  // namespace automc

#endif  // AUTOMC_SERVER_PROTOCOL_H_
