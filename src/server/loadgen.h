#ifndef AUTOMC_SERVER_LOADGEN_H_
#define AUTOMC_SERVER_LOADGEN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/run_spec.h"

namespace automc {
namespace server {
namespace loadgen {

// Open-loop load generator for an automc_serve endpoint (bench/load_replay
// is the CLI driver; docs/operations.md is the runbook).
//
// "Open loop" means the request schedule is fixed before the run starts —
// arrivals are a seeded Poisson process at the target QPS — and a request
// is *charged from its scheduled send time*, whether or not earlier
// requests have been answered yet. A closed-loop client (send, wait,
// send) silently stops offering load the moment the server slows down,
// which hides exactly the tail latency an SLO cares about (coordinated
// omission). Here a slow server faces the same arrival rate regardless,
// back-to-back requests pipeline onto their connection, and an answer
// that misses the timeout is recorded as a timeout instead of a latency
// sample.

// The request mix. Weights are relative, not percentages.
enum class Op : uint32_t {
  kStatus = 0,  // kJobStatus of a known (or probing) job id
  kList = 1,    // kListJobs
  kSubmit = 2,  // kSubmitJob of ReplayOptions::submit_spec
  kCancel = 3,  // kCancelJob of a known job id
  kFetch = 4,   // kFetchOutcome of a known job id
  // kFetchModel of ReplayOptions::artifact_name: the one *streaming* reply
  // in the protocol (kModelStart + chunks + kModelEnd). Latency is charged
  // at kModelEnd — the whole multi-MiB artifact must land, flowing through
  // the server's write watermarks, before the op counts as answered.
  kFetchModel = 5,
};
inline constexpr int kNumOps = 6;
const char* OpName(Op op);

struct Mix {
  // Indexed by static_cast<int>(Op). Defaults to the serving-tier shape:
  // poll-dominated with a trickle of submits and outcome fetches
  // (fetch_model off by default: it needs a published artifact to target).
  double weight[kNumOps] = {70, 10, 5, 5, 10, 0};

  // "status=70,list=10,submit=5,cancel=5,fetch=10,fetch_model=2" — any
  // subset of names, unlisted ops get weight 0; at least one weight must
  // be positive.
  static Result<Mix> Parse(std::string_view text);
  std::string ToString() const;
};

// One scheduled request: fire `op` on connection `conn` at `at_ns` after
// the run starts.
struct ScheduledOp {
  int64_t at_ns = 0;
  Op op = Op::kStatus;
  uint32_t conn = 0;
};

struct ScheduleParams {
  double qps = 100.0;      // aggregate target arrival rate
  double duration_s = 1.0; // schedule horizon
  int connections = 1;     // ops are spread across this many connections
  uint64_t seed = 1;
  Mix mix;
};

// The full arrival schedule: Poisson inter-arrival times at `qps`, op type
// drawn from the mix, connection drawn uniformly — all from one seeded
// generator with an explicitly specified mapping, so the same params
// produce the exact same (timestamp, op, conn) sequence on every run and
// platform. Timestamps are strictly increasing.
std::vector<ScheduledOp> BuildSchedule(const ScheduleParams& params);

struct OpStats {
  int64_t sent = 0;
  int64_t ok = 0;        // expected reply type
  int64_t rejected = 0;  // typed kError the workload expects (NotFound on a
                         // probe id, FailedPrecondition on queue-full /
                         // not-DONE fetch / already-terminal cancel)
  int64_t errors = 0;    // any other kError, or a transport failure
  int64_t timeouts = 0;  // no reply within timeout_ms of the scheduled send
};

struct Report {
  OpStats per_op[kNumOps];
  double wall_s = 0.0;
  double offered_qps = 0.0;   // scheduled ops / horizon
  double achieved_qps = 0.0;  // answered (ok + rejected) ops / wall
  int64_t conns_opened = 0;
  int64_t reconnects = 0;      // churn-driven close+reopen cycles
  int64_t conn_failures = 0;   // transport-level connection losses
  int64_t submitted_jobs = 0;  // acknowledged kSubmitted replies
  // Bucket-interpolated percentiles (ms) from the load.<op>_ms histograms;
  // 0 for an op with no latency samples.
  double p50_ms[kNumOps] = {};
  double p95_ms[kNumOps] = {};
  double p99_ms[kNumOps] = {};
  double p999_ms[kNumOps] = {};

  OpStats Total() const;
  // errors + timeouts over sent (rejections are answered requests).
  double ErrorRate() const;
  // The report as a JSON object (the "ops"/"totals" sections of
  // BENCH_load.json — see docs/benchmarking.md).
  std::string ToJson() const;
};

struct SloBudget {
  double p99_ms = 0.0;          // per-op p99 budget; 0 disables
  double max_error_rate = -1.0; // total error-rate budget; < 0 disables
};

// One human-readable line per violated budget; empty means the gate holds.
// Ops that sent nothing are skipped.
std::vector<std::string> CheckSlo(const Report& report, const SloBudget& slo);

struct ReplayOptions {
  std::string address;  // unix socket path or "tcp:HOST:PORT"
  ScheduleParams schedule;
  double timeout_ms = 1000.0;
  // Close + reopen a connection after this many answered ops on it (0
  // disables). Exercises accept/teardown churn under load.
  int churn_every = 0;
  // Base spec for kSubmit ops; the seed is advanced per submit so jobs
  // are distinct. Keep it tiny — submitted jobs really run.
  core::RunSpec submit_spec;
  // Artifact name kFetchModel ops request. Empty targets "loadgen-seed"
  // (bench/load_replay pre-publishes it in self-host mode); a fetch of a
  // name the server doesn't have is an expected NotFound rejection.
  std::string artifact_name;
};

// Runs the schedule against a live endpoint. Latency samples land in the
// MetricsRegistry histograms "load.<op>_ms" (LatencyBounds resolution);
// the returned report carries the per-op percentiles and error taxonomy.
// Fails only on setup errors (cannot connect at start); a connection lost
// mid-run is counted, reopened, and the run continues.
Result<Report> RunReplay(const ReplayOptions& options);

}  // namespace loadgen
}  // namespace server
}  // namespace automc

#endif  // AUTOMC_SERVER_LOADGEN_H_
