#ifndef AUTOMC_SERVER_SERVER_H_
#define AUTOMC_SERVER_SERVER_H_

#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "server/job_manager.h"

namespace automc {
namespace server {

// The automc_serve transport: a Unix-domain stream socket speaking the
// framed protocol, one reader thread per connection, requests dispatched
// to a JobManager. Job execution happens on the manager's own threads, so
// a status poll never waits behind a running search.
//
// Shutdown is graceful by design: RequestStop() is async-signal-safe (one
// write to a self-pipe), and Wait() then stops accepting, lets each
// connection finish the frame in flight, checkpoints + re-queues running
// jobs (JobManager::Shutdown(drain)), flushes the metrics JSON when
// $AUTOMC_METRICS_OUT is set, and returns — the SIGTERM/SIGINT path of
// automc_serve exits 0 through here.
class Server {
 public:
  struct Options {
    // Socket path; empty reads $AUTOMC_SOCKET.
    std::string socket_path;
    JobManager::Options jobs;
  };

  // Opens (or recovers) the job manager, binds the socket and starts the
  // accept loop. The bound path is unlinked first, so a stale socket from
  // a killed server never blocks a restart.
  static Result<std::unique_ptr<Server>> Start(Options options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Async-signal-safe stop request (callable from a signal handler).
  void RequestStop();
  // Blocks until a stop is requested, then drains and shuts down.
  void Wait();
  // RequestStop() + Wait(); for tests and embedders.
  void Stop();

  const std::string& socket_path() const { return socket_path_; }
  JobManager* jobs() { return jobs_.get(); }

 private:
  Server() = default;

  void AcceptLoop();
  void ServeConnection(int fd);

  std::string socket_path_;
  std::unique_ptr<JobManager> jobs_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::thread accept_thread_;

  std::mutex conn_mu_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
  bool draining_ = false;
};

}  // namespace server
}  // namespace automc

#endif  // AUTOMC_SERVER_SERVER_H_
