#ifndef AUTOMC_SERVER_SERVER_H_
#define AUTOMC_SERVER_SERVER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "fleet/event_loop.h"
#include "server/job_manager.h"

namespace automc {
namespace server {

// The request->reply dispatch over a JobManager: one decoded AMCS frame
// in, one reply frame out (kError carrying the Status on failure). Used
// by the single-process server's event loop and, unchanged, by the fleet
// worker's blocking control-channel loop — both transports speak to the
// same dispatch, so a sharded job takes exactly the code path a direct
// one does.
class JobRequestHandler : public fleet::RequestHandler {
 public:
  explicit JobRequestHandler(JobManager* jobs) : jobs_(jobs) {}
  // client-blind entry (fleet worker control channel): tenant 0.
  Frame Handle(const Frame& request) override { return Handle(0, request); }
  // Event-loop entry: `client` (the connection serial) becomes the
  // JobManager fairness tenant for kSubmitJob, so concurrent submitters
  // share job slots round-robin instead of strictly FIFO.
  Frame Handle(uint64_t client, const Frame& request) override;
  // kFetchModel gets a chunked multi-frame reply (see
  // server/artifact_stream.h); everything else falls through to Handle.
  std::unique_ptr<fleet::ReplyStream> HandleStream(
      uint64_t client, const Frame& request) override;

 private:
  JobManager* jobs_;
};

// The automc_serve transport: a Unix-domain socket and (optionally) a TCP
// listener, both speaking the framed protocol through one epoll event
// loop (fleet::EventLoop) — no per-connection threads. Requests dispatch
// to a JobManager by default, or to a caller-supplied handler (the fleet
// coordinator frontend). Job execution happens on the manager's own
// threads, so a status poll never waits behind a running search.
//
// Shutdown is graceful by design: RequestStop() is async-signal-safe (one
// eventfd write), and Wait() then stops accepting, answers every frame
// already buffered, flushes pending replies (bounded), checkpoints +
// re-queues running jobs (JobManager::Shutdown(drain)), flushes the
// metrics JSON when $AUTOMC_METRICS_OUT is set, and returns — the
// SIGTERM/SIGINT path of automc_serve exits 0 through here.
class Server {
 public:
  struct Options {
    // Unix socket path; empty reads $AUTOMC_SOCKET.
    std::string socket_path;
    // Optional TCP listener, "tcp:HOST:PORT" (port 0 = kernel-assigned);
    // empty reads $AUTOMC_TCP; unset in both places = unix only.
    std::string tcp_address;
    // Idle-connection timeout in seconds; 0 disables, -1 reads
    // $AUTOMC_SERVER_IDLE_TIMEOUT (default 0).
    int idle_timeout_s = -1;
    // Custom dispatch (not owned; must outlive the server). When null the
    // server opens a JobManager from `jobs` and serves it.
    fleet::RequestHandler* handler = nullptr;
    JobManager::Options jobs;
  };

  // Opens (or recovers) the job manager, binds the listeners and starts
  // the event loop. Bound unix paths are unlinked first, so a stale
  // socket from a killed server never blocks a restart.
  static Result<std::unique_ptr<Server>> Start(Options options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Async-signal-safe stop request (callable from a signal handler).
  void RequestStop();
  // Blocks until a stop is requested, then drains and shuts down.
  void Wait();
  // RequestStop() + Wait(); for tests and embedders.
  void Stop();

  const std::string& socket_path() const { return socket_path_; }
  // The bound TCP address with the real port ("tcp:IP:PORT"), empty when
  // no TCP listener was configured.
  const std::string& tcp_address() const { return tcp_address_; }
  // Null when a custom handler was supplied.
  JobManager* jobs() { return jobs_.get(); }

 private:
  Server() = default;

  std::string socket_path_;
  std::string tcp_address_;
  std::unique_ptr<JobManager> jobs_;
  std::unique_ptr<JobRequestHandler> default_handler_;
  std::unique_ptr<fleet::EventLoop> loop_;
  bool stopped_ = false;
};

}  // namespace server
}  // namespace automc

#endif  // AUTOMC_SERVER_SERVER_H_
