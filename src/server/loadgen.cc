#include "server/loadgen.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <random>
#include <sstream>

#include "common/bytes.h"
#include "common/metrics.h"
#include "common/net.h"
#include "server/protocol.h"

namespace automc {
namespace server {
namespace loadgen {

namespace {

using Clock = std::chrono::steady_clock;

constexpr const char* kOpNames[kNumOps] = {"status", "list",  "submit",
                                           "cancel", "fetch", "fetch_model"};

MsgType RequestType(Op op) {
  switch (op) {
    case Op::kStatus: return MsgType::kJobStatus;
    case Op::kList: return MsgType::kListJobs;
    case Op::kSubmit: return MsgType::kSubmitJob;
    case Op::kCancel: return MsgType::kCancelJob;
    case Op::kFetch: return MsgType::kFetchOutcome;
    case Op::kFetchModel: return MsgType::kFetchModel;
  }
  return MsgType::kJobStatus;
}

// The frame that *completes* the reply; kFetchModel's kModelStart/kModelChunk
// interior frames are absorbed without popping the pending FIFO.
MsgType ExpectedReply(Op op) {
  switch (op) {
    case Op::kStatus: return MsgType::kStatus;
    case Op::kList: return MsgType::kJobList;
    case Op::kSubmit: return MsgType::kSubmitted;
    case Op::kCancel: return MsgType::kOk;
    case Op::kFetch: return MsgType::kOutcome;
    case Op::kFetchModel: return MsgType::kModelEnd;
  }
  return MsgType::kStatus;
}

// [0, 1) from the top 53 bits — an explicitly pinned mapping, unlike the
// implementation-defined std::uniform_real_distribution.
double Unit(std::mt19937_64& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

std::string JsonDouble(double v) {
  std::ostringstream os;
  os.precision(6);
  if (!std::isfinite(v)) v = 0.0;
  os << v;
  return os.str();
}

}  // namespace

const char* OpName(Op op) { return kOpNames[static_cast<int>(op)]; }

Result<Mix> Mix::Parse(std::string_view text) {
  Mix mix;
  if (text.empty()) return mix;
  for (double& w : mix.weight) w = 0.0;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t comma = std::min(text.find(',', pos), text.size());
    const std::string_view entry = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("mix entry '" + std::string(entry) +
                                     "' is not name=weight");
    }
    const std::string_view name = entry.substr(0, eq);
    int found = -1;
    for (int i = 0; i < kNumOps; ++i) {
      if (name == kOpNames[i]) found = i;
    }
    if (found < 0) {
      return Status::InvalidArgument("unknown mix op '" + std::string(name) +
                                     "'");
    }
    char* end = nullptr;
    const std::string value(entry.substr(eq + 1));
    const double w = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || !(w >= 0.0)) {
      return Status::InvalidArgument("bad mix weight '" + value + "'");
    }
    mix.weight[found] = w;
  }
  double total = 0.0;
  for (double w : mix.weight) total += w;
  if (total <= 0.0) {
    return Status::InvalidArgument("mix has no positive weight");
  }
  return mix;
}

std::string Mix::ToString() const {
  std::ostringstream os;
  for (int i = 0; i < kNumOps; ++i) {
    if (i) os << ",";
    os << kOpNames[i] << "=" << JsonDouble(weight[i]);
  }
  return os.str();
}

std::vector<ScheduledOp> BuildSchedule(const ScheduleParams& params) {
  std::vector<ScheduledOp> schedule;
  if (params.qps <= 0.0 || params.duration_s <= 0.0 ||
      params.connections <= 0) {
    return schedule;
  }
  double cumulative[kNumOps];
  double total = 0.0;
  for (int i = 0; i < kNumOps; ++i) {
    total += std::max(params.mix.weight[i], 0.0);
    cumulative[i] = total;
  }
  if (total <= 0.0) return schedule;

  std::mt19937_64 rng(params.seed);
  schedule.reserve(static_cast<size_t>(params.qps * params.duration_s * 1.1));
  double t = 0.0;
  for (;;) {
    // Poisson arrivals: exponential inter-arrival via inverse CDF.
    t += -std::log1p(-Unit(rng)) / params.qps;
    if (t >= params.duration_s) break;
    const double pick = Unit(rng) * total;
    Op op = Op::kFetch;
    for (int i = 0; i < kNumOps; ++i) {
      if (pick < cumulative[i]) {
        op = static_cast<Op>(i);
        break;
      }
    }
    ScheduledOp entry;
    entry.at_ns = static_cast<int64_t>(t * 1e9);
    entry.op = op;
    entry.conn = static_cast<uint32_t>(
        rng() % static_cast<uint64_t>(params.connections));
    // Distinct-timestamp guarantee (ns resolution can collide at high QPS).
    if (!schedule.empty() && entry.at_ns <= schedule.back().at_ns) {
      entry.at_ns = schedule.back().at_ns + 1;
    }
    schedule.push_back(entry);
  }
  return schedule;
}

OpStats Report::Total() const {
  OpStats t;
  for (const OpStats& s : per_op) {
    t.sent += s.sent;
    t.ok += s.ok;
    t.rejected += s.rejected;
    t.errors += s.errors;
    t.timeouts += s.timeouts;
  }
  return t;
}

double Report::ErrorRate() const {
  const OpStats t = Total();
  if (t.sent == 0) return 0.0;
  return static_cast<double>(t.errors + t.timeouts) /
         static_cast<double>(t.sent);
}

std::string Report::ToJson() const {
  std::ostringstream os;
  os << "{\n  \"offered_qps\": " << JsonDouble(offered_qps)
     << ",\n  \"achieved_qps\": " << JsonDouble(achieved_qps)
     << ",\n  \"wall_s\": " << JsonDouble(wall_s)
     << ",\n  \"conns_opened\": " << conns_opened
     << ",\n  \"reconnects\": " << reconnects
     << ",\n  \"conn_failures\": " << conn_failures
     << ",\n  \"submitted_jobs\": " << submitted_jobs << ",\n  \"ops\": {";
  bool first = true;
  for (int i = 0; i < kNumOps; ++i) {
    const OpStats& s = per_op[i];
    if (s.sent == 0) continue;
    os << (first ? "" : ",") << "\n    \"" << kOpNames[i] << "\": {"
       << "\"sent\": " << s.sent << ", \"ok\": " << s.ok
       << ", \"rejected\": " << s.rejected << ", \"errors\": " << s.errors
       << ", \"timeouts\": " << s.timeouts
       << ", \"p50_ms\": " << JsonDouble(p50_ms[i])
       << ", \"p95_ms\": " << JsonDouble(p95_ms[i])
       << ", \"p99_ms\": " << JsonDouble(p99_ms[i])
       << ", \"p999_ms\": " << JsonDouble(p999_ms[i]) << "}";
    first = false;
  }
  const OpStats t = Total();
  os << (first ? "" : "\n  ") << "},\n  \"totals\": {\"sent\": " << t.sent
     << ", \"ok\": " << t.ok << ", \"rejected\": " << t.rejected
     << ", \"errors\": " << t.errors << ", \"timeouts\": " << t.timeouts
     << ", \"error_rate\": " << JsonDouble(ErrorRate()) << "}\n}";
  return os.str();
}

std::vector<std::string> CheckSlo(const Report& report, const SloBudget& slo) {
  std::vector<std::string> violations;
  if (slo.p99_ms > 0.0) {
    for (int i = 0; i < kNumOps; ++i) {
      if (report.per_op[i].sent == 0) continue;
      if (report.p99_ms[i] > slo.p99_ms) {
        std::ostringstream os;
        os << kOpNames[i] << " p99 " << JsonDouble(report.p99_ms[i])
           << " ms exceeds the " << JsonDouble(slo.p99_ms) << " ms budget";
        violations.push_back(os.str());
      }
    }
  }
  if (slo.max_error_rate >= 0.0 && report.ErrorRate() > slo.max_error_rate) {
    std::ostringstream os;
    os << "error rate " << JsonDouble(report.ErrorRate()) << " exceeds the "
       << JsonDouble(slo.max_error_rate) << " budget";
    violations.push_back(os.str());
  }
  return violations;
}

namespace {

struct Pending {
  Op op = Op::kStatus;
  int64_t scheduled_ns = 0;
  bool timed_out = false;
};

struct Conn {
  int fd = -1;
  bool dead = false;  // reconnect failed; ops routed here become errors
  FrameDecoder decoder;
  std::string outbuf;
  size_t outpos = 0;
  std::deque<Pending> pending;
  int64_t answered = 0;  // since the last churn cycle
  bool want_out = false; // EPOLLOUT currently armed
};

// The single-threaded replay engine: one epoll over all connections, the
// schedule replayed on the wall clock, replies matched FIFO per
// connection (the AMCS server answers frames in arrival order).
class Replayer {
 public:
  Replayer(const ReplayOptions& options, std::vector<ScheduledOp> schedule)
      : options_(options), schedule_(std::move(schedule)) {
    id_rng_.seed(options.schedule.seed ^ 0x9e3779b97f4a7c15ull);
    for (int i = 0; i < kNumOps; ++i) {
      latency_[i] = std::make_unique<metrics::Histogram>(
          metrics::Histogram::LatencyBounds());
    }
  }

  Result<Report> Run();

 private:
  int64_t NowNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  Status OpenConn(Conn* conn);
  void SendScheduled(const ScheduledOp& entry, int64_t now_ns);
  std::string EncodeRequest(Op op);
  void FlushConn(Conn* conn);
  void ReadConn(Conn* conn);
  void FailConn(Conn* conn);
  void MaybeChurn(Conn* conn);
  void UpdateEpollOut(Conn* conn);
  void SweepTimeouts(int64_t now_ns);
  void OnReply(Conn* conn, const Frame& frame, int64_t now_ns);
  uint64_t PickKnownId();

  const ReplayOptions& options_;
  std::vector<ScheduledOp> schedule_;
  Clock::time_point start_;
  net::Epoll epoll_;
  std::vector<Conn> conns_;
  Report report_;
  std::vector<uint64_t> known_ids_;
  std::mt19937_64 id_rng_;
  uint64_t next_submit_seed_ = 0;
  std::unique_ptr<metrics::Histogram> latency_[kNumOps];
  int64_t timeout_ns_ = 0;
};

Status Replayer::OpenConn(Conn* conn) {
  AUTOMC_ASSIGN_OR_RETURN(int fd, net::ConnectAddress(options_.address));
  AUTOMC_RETURN_IF_ERROR(net::SetNonBlocking(fd, true));
  conn->fd = fd;
  conn->dead = false;
  conn->decoder = FrameDecoder();
  conn->outbuf.clear();
  conn->outpos = 0;
  conn->pending.clear();
  conn->answered = 0;
  conn->want_out = false;
  ++report_.conns_opened;
  const uint64_t tag = static_cast<uint64_t>(conn - conns_.data());
  return epoll_.Add(fd, EPOLLIN, tag);
}

uint64_t Replayer::PickKnownId() {
  // Before any submit is acknowledged there is nothing real to target;
  // probing id 1 exercises the lookup path and is an expected rejection.
  if (known_ids_.empty()) return 1;
  return known_ids_[id_rng_() % known_ids_.size()];
}

std::string Replayer::EncodeRequest(Op op) {
  ByteWriter w;
  switch (op) {
    case Op::kList:
      break;
    case Op::kStatus:
    case Op::kCancel:
    case Op::kFetch:
      w.U64(PickKnownId());
      break;
    case Op::kSubmit: {
      core::RunSpec spec = options_.submit_spec;
      spec.seed += next_submit_seed_++;
      core::EncodeRunSpec(spec, &w);
      break;
    }
    case Op::kFetchModel:
      w.Str(options_.artifact_name.empty() ? "loadgen-seed"
                                           : options_.artifact_name);
      break;
  }
  return EncodeFrame(RequestType(op), w.str());
}

void Replayer::SendScheduled(const ScheduledOp& entry, int64_t now_ns) {
  Conn* conn = &conns_[entry.conn];
  OpStats& stats = report_.per_op[static_cast<int>(entry.op)];
  ++stats.sent;
  if (conn->dead) {
    ++stats.errors;
    return;
  }
  MaybeChurn(conn);
  if (conn->dead) {
    ++stats.errors;
    return;
  }
  conn->outbuf += EncodeRequest(entry.op);
  Pending p;
  p.op = entry.op;
  // Charged from the *scheduled* arrival, not the moment the bytes leave:
  // queueing delay caused by a slow server is part of its latency.
  p.scheduled_ns = entry.at_ns;
  conn->pending.push_back(p);
  (void)now_ns;
  FlushConn(conn);
}

void Replayer::FlushConn(Conn* conn) {
  if (conn->fd < 0) return;
  while (conn->outpos < conn->outbuf.size()) {
    ssize_t w = ::send(conn->fd, conn->outbuf.data() + conn->outpos,
                       conn->outbuf.size() - conn->outpos, MSG_NOSIGNAL);
    if (w > 0) {
      conn->outpos += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      conn->outbuf.erase(0, conn->outpos);
      conn->outpos = 0;
      UpdateEpollOut(conn);
      return;
    }
    FailConn(conn);
    return;
  }
  conn->outbuf.clear();
  conn->outpos = 0;
  UpdateEpollOut(conn);
}

void Replayer::UpdateEpollOut(Conn* conn) {
  const bool want = conn->outpos < conn->outbuf.size();
  if (want == conn->want_out || conn->fd < 0) return;
  conn->want_out = want;
  epoll_.Mod(conn->fd, EPOLLIN | (want ? EPOLLOUT : 0u),
             static_cast<uint64_t>(conn - conns_.data()));
}

void Replayer::FailConn(Conn* conn) {
  if (conn->fd >= 0) {
    epoll_.Del(conn->fd);
    ::close(conn->fd);
    conn->fd = -1;
  }
  ++report_.conn_failures;
  // Requests stranded on the dead connection can never be answered.
  for (const Pending& p : conn->pending) {
    if (!p.timed_out) ++report_.per_op[static_cast<int>(p.op)].errors;
  }
  conn->pending.clear();
  if (!OpenConn(conn).ok()) conn->dead = true;
}

void Replayer::MaybeChurn(Conn* conn) {
  if (options_.churn_every <= 0 || conn->answered < options_.churn_every)
    return;
  // Only churn a quiet connection — tearing down in-flight requests would
  // manufacture errors the server never caused.
  if (!conn->pending.empty() || conn->outpos < conn->outbuf.size()) return;
  epoll_.Del(conn->fd);
  ::close(conn->fd);
  conn->fd = -1;
  if (OpenConn(conn).ok()) {
    --report_.conns_opened;  // a reconnect, not a new stream
    ++report_.reconnects;
  } else {
    conn->dead = true;
  }
}

void Replayer::OnReply(Conn* conn, const Frame& frame, int64_t now_ns) {
  const MsgType type = static_cast<MsgType>(frame.type);
  if (type == MsgType::kModelStart || type == MsgType::kModelChunk) {
    // Interior frames of a streaming kFetchModel reply: the request stays
    // pending (and keeps its scheduled-send charge) until kModelEnd.
    if (conn->pending.empty() ||
        conn->pending.front().op != Op::kFetchModel) {
      ++report_.per_op[static_cast<int>(Op::kStatus)].errors;
    }
    return;
  }
  if (conn->pending.empty()) {
    // A reply with no matching request: protocol confusion.
    ++report_.per_op[static_cast<int>(Op::kStatus)].errors;
    return;
  }
  Pending p = conn->pending.front();
  conn->pending.pop_front();
  ++conn->answered;
  if (p.timed_out) return;  // already charged as a timeout; discard late data

  OpStats& stats = report_.per_op[static_cast<int>(p.op)];
  const double ms = static_cast<double>(now_ns - p.scheduled_ns) / 1e6;
  if (static_cast<MsgType>(frame.type) == MsgType::kError) {
    const Status st = DecodeError(frame.payload);
    const bool expected = st.code() == StatusCode::kNotFound ||
                          st.code() == StatusCode::kFailedPrecondition;
    if (expected) {
      ++stats.rejected;
    } else {
      ++stats.errors;
      return;  // latency of a hard failure is not an SLO sample
    }
  } else if (static_cast<MsgType>(frame.type) == ExpectedReply(p.op)) {
    ++stats.ok;
    if (p.op == Op::kSubmit) {
      ByteReader r(frame.payload);
      uint64_t id = 0;
      if (r.U64(&id)) {
        known_ids_.push_back(id);
        ++report_.submitted_jobs;
      }
    }
  } else {
    ++stats.errors;
    return;
  }
  latency_[static_cast<int>(p.op)]->Observe(ms);
  AUTOMC_METRIC_OBSERVE(std::string("load.") + OpName(p.op) + "_ms", ms);
}

void Replayer::ReadConn(Conn* conn) {
  char chunk[64 << 10];
  for (;;) {
    ssize_t r = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (r > 0) {
      conn->decoder.Feed(chunk, static_cast<size_t>(r));
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // EOF or hard error with requests possibly in flight.
    FailConn(conn);
    return;
  }
  Frame frame;
  Status error;
  const int64_t now_ns = NowNs();
  for (;;) {
    FrameDecoder::Event ev = conn->decoder.Next(&frame, &error);
    if (ev == FrameDecoder::Event::kNeedMore) break;
    if (ev == FrameDecoder::Event::kError) {
      FailConn(conn);
      return;
    }
    OnReply(conn, frame, now_ns);
  }
}

void Replayer::SweepTimeouts(int64_t now_ns) {
  for (Conn& conn : conns_) {
    for (Pending& p : conn.pending) {
      if (p.timed_out) continue;
      if (p.scheduled_ns + timeout_ns_ <= now_ns) {
        p.timed_out = true;
        ++report_.per_op[static_cast<int>(p.op)].timeouts;
      } else {
        break;  // FIFO: later entries were scheduled later
      }
    }
  }
}

Result<Report> Replayer::Run() {
  if (schedule_.empty()) {
    return Status::InvalidArgument("empty load schedule (qps/duration/mix)");
  }
  timeout_ns_ = static_cast<int64_t>(options_.timeout_ms * 1e6);
  AUTOMC_ASSIGN_OR_RETURN(epoll_, net::Epoll::Create());
  conns_.resize(static_cast<size_t>(options_.schedule.connections));
  for (Conn& conn : conns_) AUTOMC_RETURN_IF_ERROR(OpenConn(&conn));

  report_.offered_qps =
      static_cast<double>(schedule_.size()) / options_.schedule.duration_s;
  start_ = Clock::now();
  size_t next = 0;
  // After the horizon, linger until every request is answered or timed
  // out — plus one extra timeout so late replies to timed-out requests
  // drain (and are discarded) rather than being misread as losses.
  const int64_t drain_ns = schedule_.back().at_ns + 2 * timeout_ns_;
  struct epoll_event events[64];
  for (;;) {
    int64_t now_ns = NowNs();
    while (next < schedule_.size() && schedule_[next].at_ns <= now_ns) {
      SendScheduled(schedule_[next], now_ns);
      ++next;
    }
    SweepTimeouts(now_ns);

    bool pending_left = false;
    for (const Conn& conn : conns_) {
      for (const Pending& p : conn.pending) {
        if (!p.timed_out) pending_left = true;
      }
    }
    if (next >= schedule_.size() && !pending_left) break;
    if (now_ns >= drain_ns) break;

    int64_t wake_ns = drain_ns;
    if (next < schedule_.size()) {
      wake_ns = std::min(wake_ns, schedule_[next].at_ns);
    }
    if (pending_left) wake_ns = std::min(wake_ns, now_ns + timeout_ns_ / 4);
    const int timeout_ms = static_cast<int>(
        std::max<int64_t>(0, (wake_ns - now_ns) / 1000000) + 1);
    Result<int> n = epoll_.Wait(events, 64, std::min(timeout_ms, 50));
    if (!n.ok()) return n.status();
    for (int i = 0; i < *n; ++i) {
      const size_t idx = static_cast<size_t>(events[i].data.u64);
      if (idx >= conns_.size()) continue;
      Conn* conn = &conns_[idx];
      if (conn->fd < 0) continue;
      if ((events[i].events & EPOLLOUT) != 0) FlushConn(conn);
      if (conn->fd >= 0 &&
          (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
        ReadConn(conn);
      }
    }
  }
  // Anything still unanswered after the drain window is a timeout.
  for (Conn& conn : conns_) {
    for (Pending& p : conn.pending) {
      if (!p.timed_out) {
        p.timed_out = true;
        ++report_.per_op[static_cast<int>(p.op)].timeouts;
      }
    }
    if (conn.fd >= 0) {
      epoll_.Del(conn.fd);
      ::close(conn.fd);
      conn.fd = -1;
    }
  }

  report_.wall_s = static_cast<double>(NowNs()) / 1e9;
  const OpStats total = report_.Total();
  report_.achieved_qps =
      report_.wall_s > 0.0
          ? static_cast<double>(total.ok + total.rejected) / report_.wall_s
          : 0.0;
  for (int i = 0; i < kNumOps; ++i) {
    if (latency_[i]->count() == 0) continue;
    report_.p50_ms[i] = latency_[i]->Percentile(0.50);
    report_.p95_ms[i] = latency_[i]->Percentile(0.95);
    report_.p99_ms[i] = latency_[i]->Percentile(0.99);
    report_.p999_ms[i] = latency_[i]->Percentile(0.999);
  }
  return report_;
}

}  // namespace

Result<Report> RunReplay(const ReplayOptions& options) {
  Replayer replayer(options, BuildSchedule(options.schedule));
  return replayer.Run();
}

}  // namespace loadgen
}  // namespace server
}  // namespace automc
