#include "server/job_manager.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/bytes.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "nn/serialize.h"
#include "search/report.h"
#include "store/experience_index.h"
#include "store/experience_store.h"

namespace automc {
namespace server {

namespace {

namespace fs = std::filesystem;

// CRC-guarded single-blob files (spec.bin / outcome.bin):
//   u32 magic | u32 crc32(body) | body
constexpr uint32_t kSpecMagic = 0x4A434D41;     // "AMCJ"
constexpr uint32_t kOutcomeMagic = 0x4F434D41;  // "AMCO"

int JobsFromEnv() {
  const char* env = std::getenv("AUTOMC_SERVER_JOBS");
  if (env == nullptr || *env == '\0') return 1;
  int v = std::atoi(env);
  return v > 0 ? v : 1;
}

// tmp + fsync + rename, same crash discipline as the checkpointer: a kill
// at any instant leaves either the old file or the new one.
Status WriteFileAtomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot write " + tmp + ": " +
                            std::strerror(errno));
  }
  bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size() &&
            std::fflush(f) == 0;
  if (ok) ::fsync(fileno(f));
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::Internal("short write on " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + " into place: " +
                            std::strerror(errno));
  }
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("cannot open " + path);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

Status WriteGuardedBlob(const std::string& path, uint32_t magic,
                        std::string_view body) {
  ByteWriter w;
  w.U32(magic);
  w.U32(Crc32(body));
  w.Raw(body.data(), body.size());
  return WriteFileAtomic(path, w.str());
}

Result<std::string> ReadGuardedBlob(const std::string& path, uint32_t magic) {
  AUTOMC_ASSIGN_OR_RETURN(std::string data, ReadFile(path));
  ByteReader r(data);
  uint32_t got_magic = 0, crc = 0;
  if (!r.U32(&got_magic) || !r.U32(&crc) || got_magic != magic) {
    return Status::InvalidArgument(path + " has a bad header");
  }
  std::string_view body(data.data() + 8, data.size() - 8);
  if (Crc32(body) != crc) {
    return Status::InvalidArgument(path + " failed CRC validation");
  }
  return std::string(body);
}

}  // namespace

JobManager::JobManager(Options options) : options_(std::move(options)) {
  max_concurrent_ =
      options_.max_concurrent > 0 ? options_.max_concurrent : JobsFromEnv();
  if (max_concurrent_ > 64) max_concurrent_ = 64;
}

Result<std::unique_ptr<JobManager>> JobManager::Open(Options options) {
  if (options.workdir.empty()) {
    return Status::InvalidArgument("JobManager needs a workdir");
  }
  if (options.shared_dir.empty()) {
    if (const char* env = std::getenv("AUTOMC_EXPERIENCE_INDEX");
        env != nullptr) {
      options.shared_dir = env;
    }
  }
  if (options.artifact_dir.empty()) {
    if (const char* env = std::getenv("AUTOMC_ARTIFACT_DIR");
        env != nullptr && *env != '\0') {
      options.artifact_dir = env;
    } else {
      options.artifact_dir = options.workdir + "/artifacts";
    }
  }
  std::unique_ptr<JobManager> mgr(new JobManager(std::move(options)));
  std::error_code ec;
  fs::create_directories(mgr->options_.workdir + "/jobs", ec);
  if (ec) {
    return Status::Internal("cannot create " + mgr->options_.workdir +
                            "/jobs: " + ec.message());
  }
  artifact::Registry::Options reg_opts;
  reg_opts.dir = mgr->options_.artifact_dir;
  if (Result<std::unique_ptr<artifact::Registry>> reg =
          artifact::Registry::Open(reg_opts);
      reg.ok()) {
    mgr->registry_ = std::move(*reg);
  } else {
    // Jobs still run and finish; only model fetches degrade to NotFound.
    AUTOMC_LOG(Warning) << "artifact registry unavailable: "
                        << reg.status().ToString();
  }
  AUTOMC_RETURN_IF_ERROR(mgr->Recover());
  if (!mgr->options_.start_paused) mgr->StartWorkers();
  return mgr;
}

JobManager::~JobManager() { Shutdown(/*drain=*/true); }

std::string JobManager::JobDir(uint64_t id) const {
  return options_.workdir + "/jobs/" + std::to_string(id);
}

Status JobManager::PersistState(const Job& job) const {
  std::string body = JobStateName(job.state);
  body.push_back('\n');
  if (!job.error.empty()) {
    body += job.error;
    body.push_back('\n');
  }
  return WriteFileAtomic(JobDir(job.id) + "/state", body);
}

JobInfo JobManager::InfoOf(const Job& job) const {
  JobInfo info;
  info.id = job.id;
  info.state = job.state;
  info.summary = core::RunSpecSummary(job.spec);
  info.error = job.error;
  info.executions = job.executions;
  return info;
}

Status JobManager::Recover() {
  std::vector<uint64_t> recovered;
  std::error_code ec;
  for (const auto& entry :
       fs::directory_iterator(options_.workdir + "/jobs", ec)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (name.empty() ||
        name.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    const uint64_t id = std::strtoull(name.c_str(), nullptr, 10);
    if (id == 0) continue;

    auto job = std::make_unique<Job>();
    job->id = id;
    Result<std::string> spec_body =
        ReadGuardedBlob(JobDir(id) + "/spec.bin", kSpecMagic);
    if (!spec_body.ok()) continue;  // torn Submit: no durable job yet
    ByteReader r(*spec_body);
    if (!core::DecodeRunSpec(&r, &job->spec) || !r.Done()) continue;

    // A missing/torn state file can only come from a kill between writing
    // spec.bin and state — the job was accepted but never started.
    job->state = JobState::kQueued;
    if (Result<std::string> state_body = ReadFile(JobDir(id) + "/state");
        state_body.ok()) {
      std::string_view body = *state_body;
      const size_t nl = body.find('\n');
      const std::string_view head = body.substr(0, nl);
      JobState parsed;
      if (ParseJobState(head, &parsed)) {
        job->state = parsed;
        if (nl != std::string_view::npos && nl + 1 < body.size()) {
          std::string_view rest = body.substr(nl + 1);
          while (!rest.empty() && rest.back() == '\n') rest.remove_suffix(1);
          job->error = std::string(rest);
        }
      }
    }

    if (job->state == JobState::kDone) {
      if (Result<std::string> outcome =
              ReadGuardedBlob(JobDir(id) + "/outcome.bin", kOutcomeMagic);
          outcome.ok()) {
        if (Result<search::SearchOutcome> decoded =
                search::LoadOutcomeBytes(*outcome);
            decoded.ok()) {
          job->executions = decoded->executions;
        }
      }
    } else if (!JobStateIsTerminal(job->state)) {
      // QUEUED and RUNNING both re-enter the queue; a RUNNING job resumes
      // from its checkpoint inside RunJob.
      job->state = JobState::kQueued;
      AUTOMC_RETURN_IF_ERROR(PersistState(*job));
      recovered.push_back(id);
      AUTOMC_METRIC_COUNT("server.jobs_recovered");
    }
    if (id >= next_id_) next_id_ = id + 1;
    jobs_[id] = std::move(job);
  }
  // directory_iterator ids come back in filesystem order; recovery must
  // preserve submission order. All recovered jobs share tenant 0 — their
  // submitters are gone — so the fair queue degenerates to the id-sorted
  // FIFO restarts have always replayed.
  std::sort(recovered.begin(), recovered.end());
  for (uint64_t id : recovered) queue_.Push(0, id);
  return Status::OK();
}

Result<uint64_t> JobManager::Submit(const core::RunSpec& spec,
                                    uint64_t tenant) {
  return SubmitInternal(0, spec, tenant);
}

Result<uint64_t> JobManager::SubmitWithId(uint64_t id,
                                          const core::RunSpec& spec) {
  if (id == 0) return Status::InvalidArgument("job id must be nonzero");
  // Fleet control channel: the coordinator already interleaves fairly, and
  // the submitting client's identity does not survive the hop — tenant 0.
  return SubmitInternal(id, spec, 0);
}

Result<uint64_t> JobManager::SubmitInternal(uint64_t want_id,
                                            const core::RunSpec& spec,
                                            uint64_t tenant) {
  AUTOMC_RETURN_IF_ERROR(core::ValidateRunSpec(spec));
  std::unique_lock<std::mutex> lock(mu_);
  if (stopping_) return Status::FailedPrecondition("server shutting down");
  if (want_id != 0) {
    if (auto it = jobs_.find(want_id); it != jobs_.end()) {
      ByteWriter fresh, existing;
      core::EncodeRunSpec(spec, &fresh);
      core::EncodeRunSpec(it->second->spec, &existing);
      if (fresh.str() != existing.str()) {
        return Status::InvalidArgument("job " + std::to_string(want_id) +
                                       " already exists with a different "
                                       "spec");
      }
      return want_id;  // idempotent re-ack (coordinator retry)
    }
  }
  if (static_cast<int>(queue_.size()) + active_ >= options_.queue_capacity) {
    return Status::FailedPrecondition("job queue full");
  }
  const uint64_t id = want_id != 0 ? want_id : next_id_++;
  if (id >= next_id_) next_id_ = id + 1;

  std::error_code ec;
  fs::create_directories(JobDir(id), ec);
  if (ec) {
    return Status::Internal("cannot create " + JobDir(id) + ": " +
                            ec.message());
  }
  auto job = std::make_unique<Job>();
  job->id = id;
  job->spec = spec;
  ByteWriter w;
  core::EncodeRunSpec(spec, &w);
  AUTOMC_RETURN_IF_ERROR(
      WriteGuardedBlob(JobDir(id) + "/spec.bin", kSpecMagic, w.str()));
  AUTOMC_RETURN_IF_ERROR(PersistState(*job));

  jobs_[id] = std::move(job);
  queue_.Push(tenant, id);
  AUTOMC_METRIC_GAUGE("server.queue_tenants",
                      static_cast<double>(queue_.tenants()));
  AUTOMC_METRIC_COUNT("server.jobs_submitted");
  cv_.notify_one();
  return id;
}

Result<JobInfo> JobManager::Info(uint64_t id) const {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job " + std::to_string(id));
  }
  return InfoOf(*it->second);
}

std::vector<JobInfo> JobManager::List() const {
  std::unique_lock<std::mutex> lock(mu_);
  std::vector<JobInfo> infos;
  infos.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) infos.push_back(InfoOf(*job));
  return infos;
}

Status JobManager::Cancel(uint64_t id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job " + std::to_string(id));
  }
  Job* job = it->second.get();
  if (JobStateIsTerminal(job->state)) {
    return Status::FailedPrecondition("job " + std::to_string(id) +
                                      " already " + JobStateName(job->state));
  }
  if (job->state == JobState::kQueued) {
    queue_.Remove(id);
    job->state = JobState::kCancelled;
    AUTOMC_METRIC_COUNT("server.jobs_cancelled");
    idle_cv_.notify_all();
    return PersistState(*job);
  }
  // RUNNING: cooperative — the searcher notices at its next round.
  job->cancel_requested = true;
  job->stop.RequestStop();
  return Status::OK();
}

Result<std::string> JobManager::OutcomeBytes(uint64_t id) const {
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return Status::NotFound("no job " + std::to_string(id));
    }
    if (it->second->state != JobState::kDone) {
      return Status::FailedPrecondition(
          "job " + std::to_string(id) + " is " +
          JobStateName(it->second->state) + ", not DONE");
    }
  }
  return ReadGuardedBlob(JobDir(id) + "/outcome.bin", kOutcomeMagic);
}

void JobManager::StartWorkers() {
  std::unique_lock<std::mutex> lock(mu_);
  if (workers_started_ || stopping_) return;
  workers_started_ = true;
  for (int i = 0; i < max_concurrent_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void JobManager::WorkerLoop() {
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      uint64_t id = 0;
      if (!queue_.PopNext(&id)) continue;
      job = jobs_[id].get();
      job->state = JobState::kRunning;
      ++active_;
      (void)PersistState(*job);
    }
    RunJob(job);
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      idle_cv_.notify_all();
    }
  }
}

void JobManager::RunJob(Job* job) {
  const std::string dir = JobDir(job->id);

  core::RunHooks hooks;
  hooks.stop = &job->stop;

  store::SearchCheckpointer::Options ckpt_opts;
  ckpt_opts.dir = dir;
  ckpt_opts.abort_after_writes = options_.crash_after_checkpoints;
  store::SearchCheckpointer checkpointer(ckpt_opts);
  if (automc::Status st = checkpointer.LoadPending();
      !st.ok() && st.code() != StatusCode::kNotFound) {
    std::unique_lock<std::mutex> lock(mu_);
    job->state = JobState::kFailed;
    job->error = "corrupt checkpoint: " + st.message();
    (void)PersistState(*job);
    return;
  }
  hooks.checkpointer = &checkpointer;

  Result<std::unique_ptr<store::ExperienceStore>> store =
      store::ExperienceStore::Open(dir + "/store.bin");
  if (!store.ok()) {
    std::unique_lock<std::mutex> lock(mu_);
    job->state = JobState::kFailed;
    job->error = "cannot open job store: " + store.status().message();
    (void)PersistState(*job);
    return;
  }
  hooks.store = store->get();

  // Attach the fleet's shared experience tier (when configured): local
  // store misses fall through to the mmap index, so schemes any worker
  // already evaluated are served without a real strategy execution. A
  // broken tier only degrades to cold evaluation — never fails the job.
  std::unique_ptr<store::ExperienceIndex> shared;
  if (!options_.shared_dir.empty()) {
    std::error_code shared_ec;
    fs::create_directories(options_.shared_dir, shared_ec);
    Result<std::unique_ptr<store::ExperienceIndex>> idx =
        store::ExperienceIndex::OpenOrRebuild(options_.shared_dir);
    if (idx.ok()) {
      shared = std::move(*idx);
      (*store)->AttachShared(shared.get());
    } else {
      AUTOMC_LOG(Warning) << "shared experience tier unavailable: "
                          << idx.status().ToString();
    }
  }

  Result<core::AutoMCResult> result = core::RunSearch(job->spec, hooks);

  // Publish this job's evaluations into the shared tier before marking it
  // DONE — best effort; the job's own result never depends on it.
  if (result.ok() && !options_.shared_dir.empty()) {
    std::vector<std::pair<store::Fingerprint, store::EvalRecord>> recs;
    recs.reserve((*store)->records().size());
    for (const auto& [fp, rec] : (*store)->records()) {
      recs.emplace_back(fp, *rec);
    }
    if (automc::Status st = store::PublishExperience(
            options_.shared_dir, options_.shared_segment, recs);
        !st.ok()) {
      AUTOMC_LOG(Warning) << "experience publish failed: " << st.ToString();
    }
  }

  // Publish the winning pareto model into the artifact registry before the
  // DONE transition — a client that observes DONE may immediately fetch
  // "job-<id>". Best effort like the experience publish: a failure costs
  // the artifact, never the job. The bytes come from MaterializeScheme, so
  // they are bit-identical to the model the evaluator measured (and to a
  // direct `automc_cli --export-model` of the same spec + scheme).
  if (result.ok() && registry_ != nullptr) {
    do {
      Result<size_t> win = core::PickWinningScheme(result->outcome);
      if (!win.ok()) break;  // empty front: nothing to deploy
      const std::vector<int>& scheme = result->outcome.pareto_schemes[*win];
      Result<std::unique_ptr<nn::Model>> model =
          core::MaterializeScheme(job->spec, scheme);
      if (!model.ok()) {
        AUTOMC_LOG(Warning) << "job " << job->id << ": cannot materialize "
                            << "winning scheme: "
                            << model.status().ToString();
        break;
      }
      std::ostringstream blob;
      if (automc::Status st = nn::SerializeModel(model->get(), &blob);
          !st.ok()) {
        AUTOMC_LOG(Warning) << "job " << job->id << ": cannot serialize "
                            << "winning model: " << st.ToString();
        break;
      }
      artifact::Provenance prov;
      prov.job_id = job->id;
      prov.scheme = core::SchemeIndicesToString(scheme);
      prov.summary = core::RunSpecSummary(job->spec);
      const search::EvalPoint& point = result->outcome.pareto_points[*win];
      prov.acc = point.acc;
      prov.params = point.params;
      prov.flops = point.flops;
      const std::string name = "job-" + std::to_string(job->id);
      Result<artifact::Manifest> pub =
          registry_->Publish(name, blob.str(), prov);
      if (!pub.ok()) {
        AUTOMC_LOG(Warning) << "job " << job->id << ": artifact publish "
                            << "failed: " << pub.status().ToString();
      } else {
        AUTOMC_METRIC_COUNT("server.models_published");
        AUTOMC_LOG(Info) << "job " << job->id << ": published artifact '"
                         << name << "' (" << pub->total_size << " bytes, "
                         << pub->chunks.size() << " chunks)";
      }
    } while (false);
  }

  std::unique_lock<std::mutex> lock(mu_);
  if (result.ok()) {
    const std::string bytes = search::SaveOutcomeBytes(result->outcome);
    if (automc::Status st =
            WriteGuardedBlob(dir + "/outcome.bin", kOutcomeMagic, bytes);
        !st.ok()) {
      job->state = JobState::kFailed;
      job->error = "cannot persist outcome: " + st.message();
      (void)PersistState(*job);
      AUTOMC_METRIC_COUNT("server.jobs_failed");
      return;
    }
    job->state = JobState::kDone;
    job->executions = result->outcome.executions;
    (void)PersistState(*job);
    AUTOMC_METRIC_COUNT("server.jobs_done");
    return;
  }

  if (result.status().code() == StatusCode::kCancelled) {
    if (job->cancel_requested) {
      job->state = JobState::kCancelled;
      (void)PersistState(*job);
      AUTOMC_METRIC_COUNT("server.jobs_cancelled");
    } else {
      // Drain stop: the search checkpointed itself; park the job durably
      // QUEUED so the next process picks it up where it left off.
      job->state = JobState::kQueued;
      (void)PersistState(*job);
      AUTOMC_METRIC_COUNT("server.jobs_parked");
    }
    return;
  }

  if (options_.crash_after_checkpoints > 0 &&
      result.status().code() == StatusCode::kInternal) {
    // Fault injection tripped: leave the durable state exactly as a SIGKILL
    // would — RUNNING on disk, a valid checkpoint + store beside it.
    job->state = JobState::kFailed;
    job->error = result.status().message();
    job->simulated_crash = true;
    return;
  }

  job->state = JobState::kFailed;
  job->error = result.status().message();
  (void)PersistState(*job);
  AUTOMC_METRIC_COUNT("server.jobs_failed");
}

bool JobManager::WaitIdle(double timeout_seconds) const {
  std::unique_lock<std::mutex> lock(mu_);
  return idle_cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_seconds),
      [this] { return queue_.empty() && active_ == 0; });
}

void JobManager::Shutdown(bool drain) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    if (drain) {
      for (auto& [id, job] : jobs_) {
        if (job->state == JobState::kRunning) job->stop.RequestStop();
      }
    }
    cv_.notify_all();
  }
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

}  // namespace server
}  // namespace automc
