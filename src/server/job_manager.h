#ifndef AUTOMC_SERVER_JOB_MANAGER_H_
#define AUTOMC_SERVER_JOB_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "core/run_spec.h"
#include "server/protocol.h"

namespace automc {
namespace server {

// Concurrent search-job executor with a durable lifecycle.
//
// Every job owns a directory <workdir>/jobs/<id>/ holding
//   spec.bin    — the CRC-guarded RunSpec, written before Submit returns;
//   state       — the current JobState (atomic tmp+rename replace);
//   store.bin   — the job's private experience store (PR-3);
//   checkpoint.bin — the job's private search checkpoint (PR-3);
//   outcome.bin — the CRC-guarded SaveOutcomeBytes payload once DONE.
// Because the spec and state are durable before any work starts, a process
// killed at *any* instant loses nothing: Open() re-queues every job found
// in a non-terminal state, and a re-queued RUNNING job resumes from its
// checkpoint + store, finishing with the outcome an uninterrupted run
// produces (the PR-3/PR-4 determinism contract, per job).
//
// Concurrency: up to Options::max_concurrent dedicated job threads
// (default: $AUTOMC_SERVER_JOBS, else 1) pop the bounded FIFO. Each job
// builds its own evaluator/store/checkpointer, so jobs share only the
// global thread pool and the metrics registry — nothing that affects
// results — and concurrent outcomes stay bit-identical to solo runs.
//
// Cancellation is cooperative: Cancel() flips the job's StopToken, which
// the searchers poll between rounds (search::CheckStop). Shutdown(drain:
// true) does the same to every running job but re-marks them QUEUED
// instead of CANCELLED, parking the work for the next process.
class JobManager {
 public:
  struct Options {
    std::string workdir;
    // Concurrent job threads; 0 reads $AUTOMC_SERVER_JOBS (invalid or
    // unset => 1). Clamped to [1, 64].
    int max_concurrent = 0;
    // Bounded FIFO: Submit fails once this many jobs are queued or running.
    int queue_capacity = 64;
    // Shared experience tier directory (the fleet's cross-worker cache).
    // Empty reads $AUTOMC_EXPERIENCE_INDEX; empty in both places = off.
    // When set, each job's private store consults the tier's mmap index
    // on local misses, and every finished job's records are appended to
    // `shared_segment` + republished — so a scheme any worker evaluated
    // is never executed again anywhere in the fleet.
    std::string shared_dir;
    // Segment file this process appends to (one appender per segment).
    std::string shared_segment = "seg-0.bin";
    // Test-only fault injection: each job's checkpointer aborts after this
    // many checkpoint writes and the job thread abandons the job without
    // touching its durable state — exactly what SIGKILL mid-search leaves
    // behind (state RUNNING, a valid checkpoint, a valid store). 0 off.
    int crash_after_checkpoints = 0;
    // Test-only: don't start job threads; Submit still persists + queues.
    // Lets tests model "the server died with jobs still queued".
    bool start_paused = false;
  };

  // Creates <workdir>/jobs/ if needed and recovers every existing job.
  static Result<std::unique_ptr<JobManager>> Open(Options options);
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  // Durably persists the job, then queues it. Fails when the FIFO is full
  // or the manager is shutting down.
  Result<uint64_t> Submit(const core::RunSpec& spec);

  // Fleet control-channel path: submits under a coordinator-assigned id.
  // Idempotent — if the id already exists with the same spec bytes it is
  // re-acknowledged without re-queueing (a coordinator retrying after a
  // worker respawn must not run the job twice); a different spec under an
  // existing id is an error. Local next_id_ jumps past `id`, so mixing
  // with Submit() cannot collide.
  Result<uint64_t> SubmitWithId(uint64_t id, const core::RunSpec& spec);

  Result<JobInfo> Info(uint64_t id) const;
  std::vector<JobInfo> List() const;

  // Requests cooperative cancellation. QUEUED jobs cancel immediately;
  // RUNNING jobs stop at the next search round. Terminal jobs: error.
  Status Cancel(uint64_t id);

  // The SaveOutcomeBytes payload of a DONE job (read from outcome.bin).
  Result<std::string> OutcomeBytes(uint64_t id) const;

  // Starts the job threads when Options::start_paused was set.
  void StartWorkers();

  // Blocks until no job is QUEUED or RUNNING, or the timeout elapses.
  bool WaitIdle(double timeout_seconds) const;

  // Stops the job threads. drain=true asks running jobs to checkpoint and
  // re-queue (durably QUEUED for the next process); drain=false is only
  // used by tests that simulate an abrupt death. Idempotent.
  void Shutdown(bool drain);

  int max_concurrent() const { return max_concurrent_; }

 private:
  struct Job {
    uint64_t id = 0;
    core::RunSpec spec;
    JobState state = JobState::kQueued;
    std::string error;
    int32_t executions = -1;
    search::StopToken stop;
    bool cancel_requested = false;
    // Set when fault injection abandoned the job mid-run (test-only).
    bool simulated_crash = false;
  };

  explicit JobManager(Options options);

  Result<uint64_t> SubmitInternal(uint64_t want_id, const core::RunSpec& spec);
  Status Recover();
  void WorkerLoop();
  // Runs one job end to end; returns the final state transition.
  void RunJob(Job* job);
  std::string JobDir(uint64_t id) const;
  Status PersistState(const Job& job) const;
  JobInfo InfoOf(const Job& job) const;

  Options options_;
  int max_concurrent_ = 1;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;       // queue + shutdown wakeups
  mutable std::condition_variable idle_cv_;  // WaitIdle wakeups
  std::map<uint64_t, std::unique_ptr<Job>> jobs_;
  std::deque<uint64_t> queue_;
  uint64_t next_id_ = 1;
  int active_ = 0;  // jobs currently RUNNING
  bool stopping_ = false;
  bool workers_started_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace server
}  // namespace automc

#endif  // AUTOMC_SERVER_JOB_MANAGER_H_
