#ifndef AUTOMC_SERVER_JOB_MANAGER_H_
#define AUTOMC_SERVER_JOB_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "artifact/manifest.h"
#include "common/result.h"
#include "core/run_spec.h"
#include "server/protocol.h"

namespace automc {
namespace server {

// Round-robin-fair job queue. Jobs are keyed by the tenant that submitted
// them (the event loop passes each connection's serial); PopNext cycles
// tenants so one connection pipelining a deep batch cannot starve a
// single job submitted by another — with N tenants queued, each gets
// every N-th job slot, while a single tenant degenerates to the plain
// FIFO the queue replaced (recovery re-queues everything under tenant 0,
// preserving the sorted-id restart order).
class FairQueue {
 public:
  void Push(uint64_t tenant, uint64_t id) {
    queues_[tenant].push_back(id);
    ++size_;
  }

  // Pops the oldest job of the next tenant after the last-served one
  // (wrapping); false when empty.
  bool PopNext(uint64_t* id) {
    if (size_ == 0) return false;
    auto it = queues_.upper_bound(cursor_);
    if (it == queues_.end()) it = queues_.begin();
    cursor_ = it->first;
    *id = it->second.front();
    it->second.pop_front();
    if (it->second.empty()) queues_.erase(it);
    --size_;
    return true;
  }

  // Removes a queued job by id (cancellation); false if not queued.
  bool Remove(uint64_t id) {
    for (auto it = queues_.begin(); it != queues_.end(); ++it) {
      for (auto jit = it->second.begin(); jit != it->second.end(); ++jit) {
        if (*jit != id) continue;
        it->second.erase(jit);
        if (it->second.empty()) queues_.erase(it);
        --size_;
        return true;
      }
    }
    return false;
  }

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  // Tenants with at least one queued job (metrics/tests).
  size_t tenants() const { return queues_.size(); }

 private:
  std::map<uint64_t, std::deque<uint64_t>> queues_;
  uint64_t cursor_ = 0;
  size_t size_ = 0;
};

// Concurrent search-job executor with a durable lifecycle.
//
// Every job owns a directory <workdir>/jobs/<id>/ holding
//   spec.bin    — the CRC-guarded RunSpec, written before Submit returns;
//   state       — the current JobState (atomic tmp+rename replace);
//   store.bin   — the job's private experience store (PR-3);
//   checkpoint.bin — the job's private search checkpoint (PR-3);
//   outcome.bin — the CRC-guarded SaveOutcomeBytes payload once DONE.
// Because the spec and state are durable before any work starts, a process
// killed at *any* instant loses nothing: Open() re-queues every job found
// in a non-terminal state, and a re-queued RUNNING job resumes from its
// checkpoint + store, finishing with the outcome an uninterrupted run
// produces (the PR-3/PR-4 determinism contract, per job).
//
// Concurrency: up to Options::max_concurrent dedicated job threads
// (default: $AUTOMC_SERVER_JOBS, else 1) pop the bounded FIFO. Each job
// builds its own evaluator/store/checkpointer, so jobs share only the
// global thread pool and the metrics registry — nothing that affects
// results — and concurrent outcomes stay bit-identical to solo runs.
//
// Cancellation is cooperative: Cancel() flips the job's StopToken, which
// the searchers poll between rounds (search::CheckStop). Shutdown(drain:
// true) does the same to every running job but re-marks them QUEUED
// instead of CANCELLED, parking the work for the next process.
class JobManager {
 public:
  struct Options {
    std::string workdir;
    // Concurrent job threads; 0 reads $AUTOMC_SERVER_JOBS (invalid or
    // unset => 1). Clamped to [1, 64].
    int max_concurrent = 0;
    // Bounded FIFO: Submit fails once this many jobs are queued or running.
    int queue_capacity = 64;
    // Shared experience tier directory (the fleet's cross-worker cache).
    // Empty reads $AUTOMC_EXPERIENCE_INDEX; empty in both places = off.
    // When set, each job's private store consults the tier's mmap index
    // on local misses, and every finished job's records are appended to
    // `shared_segment` + republished — so a scheme any worker evaluated
    // is never executed again anywhere in the fleet.
    std::string shared_dir;
    // Segment file this process appends to (one appender per segment).
    std::string shared_segment = "seg-0.bin";
    // Model artifact registry root (docs/artifacts.md). Every finished
    // job's winning pareto model is materialized, serialized, and
    // published here as "job-<id>" (best effort — a publish failure never
    // fails the job). Empty reads $AUTOMC_ARTIFACT_DIR, else defaults to
    // <workdir>/artifacts. Fleet workers all point at the coordinator's
    // shared directory: publishes are flock-serialized, fetches are
    // lock-free mmap reads, so any worker's model is fetchable anywhere.
    std::string artifact_dir;
    // Test-only fault injection: each job's checkpointer aborts after this
    // many checkpoint writes and the job thread abandons the job without
    // touching its durable state — exactly what SIGKILL mid-search leaves
    // behind (state RUNNING, a valid checkpoint, a valid store). 0 off.
    int crash_after_checkpoints = 0;
    // Test-only: don't start job threads; Submit still persists + queues.
    // Lets tests model "the server died with jobs still queued".
    bool start_paused = false;
  };

  // Creates <workdir>/jobs/ if needed and recovers every existing job.
  static Result<std::unique_ptr<JobManager>> Open(Options options);
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  // Durably persists the job, then queues it. Fails when the queue is full
  // or the manager is shutting down. `tenant` is the fairness key (the
  // submitting connection's serial; 0 = anonymous): queued jobs are
  // dispatched round-robin across tenants, not globally FIFO.
  Result<uint64_t> Submit(const core::RunSpec& spec, uint64_t tenant = 0);

  // Fleet control-channel path: submits under a coordinator-assigned id.
  // Idempotent — if the id already exists with the same spec bytes it is
  // re-acknowledged without re-queueing (a coordinator retrying after a
  // worker respawn must not run the job twice); a different spec under an
  // existing id is an error. Local next_id_ jumps past `id`, so mixing
  // with Submit() cannot collide.
  Result<uint64_t> SubmitWithId(uint64_t id, const core::RunSpec& spec);

  Result<JobInfo> Info(uint64_t id) const;
  std::vector<JobInfo> List() const;

  // Requests cooperative cancellation. QUEUED jobs cancel immediately;
  // RUNNING jobs stop at the next search round. Terminal jobs: error.
  Status Cancel(uint64_t id);

  // The SaveOutcomeBytes payload of a DONE job (read from outcome.bin).
  Result<std::string> OutcomeBytes(uint64_t id) const;

  // Starts the job threads when Options::start_paused was set.
  void StartWorkers();

  // Blocks until no job is QUEUED or RUNNING, or the timeout elapses.
  bool WaitIdle(double timeout_seconds) const;

  // Stops the job threads. drain=true asks running jobs to checkpoint and
  // re-queue (durably QUEUED for the next process); drain=false is only
  // used by tests that simulate an abrupt death. Idempotent.
  void Shutdown(bool drain);

  int max_concurrent() const { return max_concurrent_; }

  // The model artifact registry (nullptr only if its directory could not
  // be created — fetches then see "no artifact", jobs still run).
  artifact::Registry* registry() { return registry_.get(); }

 private:
  struct Job {
    uint64_t id = 0;
    core::RunSpec spec;
    JobState state = JobState::kQueued;
    std::string error;
    int32_t executions = -1;
    search::StopToken stop;
    bool cancel_requested = false;
    // Set when fault injection abandoned the job mid-run (test-only).
    bool simulated_crash = false;
  };

  explicit JobManager(Options options);

  Result<uint64_t> SubmitInternal(uint64_t want_id, const core::RunSpec& spec,
                                  uint64_t tenant);
  Status Recover();
  void WorkerLoop();
  // Runs one job end to end; returns the final state transition.
  void RunJob(Job* job);
  std::string JobDir(uint64_t id) const;
  Status PersistState(const Job& job) const;
  JobInfo InfoOf(const Job& job) const;

  Options options_;
  int max_concurrent_ = 1;
  std::unique_ptr<artifact::Registry> registry_;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;       // queue + shutdown wakeups
  mutable std::condition_variable idle_cv_;  // WaitIdle wakeups
  std::map<uint64_t, std::unique_ptr<Job>> jobs_;
  FairQueue queue_;
  uint64_t next_id_ = 1;
  int active_ = 0;  // jobs currently RUNNING
  bool stopping_ = false;
  bool workers_started_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace server
}  // namespace automc

#endif  // AUTOMC_SERVER_JOB_MANAGER_H_
