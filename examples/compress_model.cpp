// Using the compression methods directly (no search): train a VGG-13, then
// apply Network Slimming followed by Soft Filter Pruning — the kind of
// hand-designed two-step scheme AutoMC automates.
//
//   ./build/examples/compress_model
#include <cstdio>
#include <cstdlib>

#include "common/metrics.h"
#include "compress/compressor.h"
#include "nn/trainer.h"

int main() {
  using namespace automc;
  // Honors AUTOMC_METRICS_OUT=<path>: write the metrics snapshot at exit.
  std::atexit([] { metrics::MetricsRegistry::Global().DumpIfConfigured(); });

  // Task + model.
  data::TaskData task = data::MakeCifar10Like(11);
  nn::ModelSpec spec;
  spec.family = "vgg";
  spec.depth = 13;
  spec.num_classes = task.train.num_classes;
  spec.base_width = 4;
  Rng rng(1);
  auto built = nn::BuildModel(spec, &rng);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<nn::Model> model = std::move(built).value();

  // Pretrain.
  nn::TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 32;
  nn::Trainer trainer(tc);
  if (Status st = trainer.Fit(model.get(), task.train); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("pretrained: %.1f%% accuracy, %lld params\n",
              100.0 * nn::Trainer::Evaluate(model.get(), task.test),
              static_cast<long long>(model->ParamCount()));

  compress::CompressionContext ctx;
  ctx.train = &task.train;
  ctx.test = &task.test;
  ctx.pretrain_epochs = 3;
  ctx.batch_size = 32;

  // Step 1: Network Slimming at 20% parameter reduction.
  compress::StrategySpec ns{"NS",
                            {{"HP1", "0.4"}, {"HP2", "0.2"}, {"HP6", "0.9"}}};
  // Step 2: Soft Filter Pruning for another 15%.
  compress::StrategySpec sfp{"SFP",
                             {{"HP2", "0.15"}, {"HP9", "0.4"}, {"HP10", "1"}}};

  for (const auto& spec_step : {ns, sfp}) {
    auto compressor = compress::CreateCompressor(spec_step);
    if (!compressor.ok()) {
      std::fprintf(stderr, "%s\n", compressor.status().ToString().c_str());
      return 1;
    }
    compress::CompressionStats stats;
    if (Status st = (*compressor)->Compress(model.get(), ctx, &stats);
        !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("%s: params %lld -> %lld (PR %.1f%%), acc %.1f%% -> %.1f%%\n",
                spec_step.ToString().c_str(),
                static_cast<long long>(stats.params_before),
                static_cast<long long>(stats.params_after),
                100.0 * stats.ParamReduction(), 100.0 * stats.acc_before,
                100.0 * stats.acc_after);
  }
  return 0;
}
