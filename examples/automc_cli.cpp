// Command-line driver: run any of the four search strategies on a
// model/dataset combination and optionally save the best compressed model.
//
//   automc_cli [--family resnet|vgg] [--depth N] [--dataset c10|c100|tiny]
//              [--gamma F] [--budget N] [--searcher automc|random|evolution|rl]
//              [--eval-batch N] [--pretrain N] [--seed N] [--save PATH]
//              [--store PATH] [--checkpoint DIR] [--resume DIR]
//              [--outcome PATH]
//
// Persistence: --store (or $AUTOMC_STORE) keeps every scheme evaluation in a
// crash-safe log so repeat runs replay them instead of re-executing
// strategies; --checkpoint writes resumable search state every
// $AUTOMC_CHECKPOINT_EVERY rounds; --resume DIR continues a killed search
// from DIR and finishes with the same outcome an uninterrupted run produces.
// SIGINT/SIGTERM stop the search cooperatively: the current round finishes,
// the state is checkpointed (when --checkpoint/--resume is set) and the
// metrics snapshot is flushed before the clean exit.
//
// Client mode for a running automc_serve daemon (--socket or $AUTOMC_SOCKET;
// a unix path or "tcp:HOST:PORT" for a daemon started with --tcp):
//   automc_cli --serve-submit <search flags>     queue a search job
//   automc_cli --serve-status ID | --serve-list  poll job state
//   automc_cli --serve-result ID [--serve-wait]  fetch a finished outcome
//                 [--out FILE]                   ...streamed straight to FILE
//   automc_cli --serve-cancel ID                 cooperative cancel
//   automc_cli --serve-metrics                   server metrics JSON
//   automc_cli --serve-list-artifacts            published models + provenance
//   automc_cli --serve-fetch-model NAME --out F  stream + verify a model
//
// --export-model FILE materializes the winning scheme of a local search as
// a serialized model, byte-identical to the artifact a server publishes for
// the same spec (the registry's determinism contract; docs/artifacts.md).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "common/metrics.h"
#include "common/sha256.h"
#include "compress/scheme_parser.h"
#include "core/automc.h"
#include "core/run_spec.h"
#include "data/cifar.h"
#include "nn/serialize.h"
#include "nn/summary.h"
#include "nn/trainer.h"
#include "search/report.h"
#include "server/protocol.h"
#include "store/checkpoint.h"
#include "store/experience_store.h"

namespace {

struct CliOptions {
  std::string family = "resnet";
  int depth = 20;
  std::string dataset = "c10";
  double gamma = 0.3;
  int budget = 12;
  // Candidates per evaluation round; 0 = $AUTOMC_EVAL_BATCH (default 4).
  int eval_batch = 0;
  std::string searcher = "automc";
  int pretrain = 8;
  uint64_t seed = 1;
  std::string save_path;
  std::string apply_scheme;   // textual scheme: skip search, just apply
  bool print_summary = false;   // per-layer table after compression
  std::string cifar10_batches;  // comma-separated real CIFAR-10 .bin paths
  std::string cifar100_train;   // real CIFAR-100 train.bin
  std::string store_path;       // experience store; default $AUTOMC_STORE
  std::string checkpoint_dir;   // write periodic search checkpoints here
  std::string resume_dir;       // continue a killed search from here
  std::string outcome_path;     // save the SearchOutcome (text) here
  std::string export_model_path;  // serialize the winning scheme's model

  // Client mode against a running automc_serve daemon.
  std::string socket_path;      // default $AUTOMC_SOCKET
  bool serve_submit = false;
  bool serve_list = false;
  bool serve_metrics = false;
  bool serve_wait = false;      // with --serve-result: poll until terminal
  bool serve_list_artifacts = false;
  long long serve_status_id = -1;
  long long serve_result_id = -1;
  long long serve_cancel_id = -1;
  std::string serve_fetch_model;  // artifact name to stream from the server
  std::string out_path;           // file sink for the streaming fetches

  bool serve_mode() const {
    return serve_submit || serve_list || serve_metrics ||
           serve_list_artifacts || !serve_fetch_model.empty() ||
           serve_status_id >= 0 || serve_result_id >= 0 ||
           serve_cancel_id >= 0;
  }
};

bool ParseArgs(int argc, char** argv, CliOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--family" && (v = next())) {
      opts->family = v;
    } else if (arg == "--depth" && (v = next())) {
      opts->depth = std::atoi(v);
    } else if (arg == "--dataset" && (v = next())) {
      opts->dataset = v;
    } else if (arg == "--gamma" && (v = next())) {
      opts->gamma = std::atof(v);
    } else if (arg == "--budget" && (v = next())) {
      opts->budget = std::atoi(v);
    } else if (arg == "--eval-batch" && (v = next())) {
      opts->eval_batch = std::atoi(v);
    } else if (arg == "--searcher" && (v = next())) {
      opts->searcher = v;
    } else if (arg == "--pretrain" && (v = next())) {
      opts->pretrain = std::atoi(v);
    } else if (arg == "--seed" && (v = next())) {
      opts->seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--save" && (v = next())) {
      opts->save_path = v;
    } else if (arg == "--apply" && (v = next())) {
      opts->apply_scheme = v;
    } else if (arg == "--summary") {
      opts->print_summary = true;
    } else if (arg == "--cifar10" && (v = next())) {
      opts->cifar10_batches = v;
    } else if (arg == "--cifar100" && (v = next())) {
      opts->cifar100_train = v;
    } else if (arg == "--store" && (v = next())) {
      opts->store_path = v;
    } else if (arg == "--checkpoint" && (v = next())) {
      opts->checkpoint_dir = v;
    } else if (arg == "--resume" && (v = next())) {
      opts->resume_dir = v;
    } else if (arg == "--outcome" && (v = next())) {
      opts->outcome_path = v;
    } else if (arg == "--export-model" && (v = next())) {
      opts->export_model_path = v;
    } else if (arg == "--out" && (v = next())) {
      opts->out_path = v;
    } else if (arg == "--socket" && (v = next())) {
      opts->socket_path = v;
    } else if (arg == "--serve-submit") {
      opts->serve_submit = true;
    } else if (arg == "--serve-list") {
      opts->serve_list = true;
    } else if (arg == "--serve-metrics") {
      opts->serve_metrics = true;
    } else if (arg == "--serve-wait") {
      opts->serve_wait = true;
    } else if (arg == "--serve-status" && (v = next())) {
      opts->serve_status_id = std::atoll(v);
    } else if (arg == "--serve-result" && (v = next())) {
      opts->serve_result_id = std::atoll(v);
    } else if (arg == "--serve-cancel" && (v = next())) {
      opts->serve_cancel_id = std::atoll(v);
    } else if (arg == "--serve-fetch-model" && (v = next())) {
      opts->serve_fetch_model = v;
    } else if (arg == "--serve-list-artifacts") {
      opts->serve_list_artifacts = true;
    } else if (arg == "--help") {
      return false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: automc_cli [--family resnet|vgg] [--depth N] [--dataset "
      "c10|c100]\n                  [--gamma F] [--budget N] [--searcher "
      "automc|random|evolution|rl]\n                  [--pretrain N] [--seed "
      "N] [--save PATH]\n                  [--apply \"SCHEME\"] [--cifar10 "
      "b1.bin,b2.bin] [--cifar100 train.bin]\n                  [--store "
      "PATH] [--checkpoint DIR] [--resume DIR] [--outcome PATH]\n"
      "  --store PATH      persistent evaluation cache (default: "
      "$AUTOMC_STORE)\n"
      "  --checkpoint DIR  checkpoint search state every "
      "$AUTOMC_CHECKPOINT_EVERY rounds\n"
      "  --resume DIR      continue a killed search from DIR's checkpoint\n"
      "  --outcome PATH    save the final SearchOutcome as text\n"
      "  --eval-batch N    candidate schemes per parallel evaluation round\n"
      "                    (default: $AUTOMC_EVAL_BATCH, else 4)\n"
      "  --export-model F  serialize the winning scheme's model to F,\n"
      "                    byte-identical to the server's published artifact\n"
      "client mode (against automc_serve; --socket PATH or $AUTOMC_SOCKET;\n"
      "             PATH is a unix socket path or tcp:HOST:PORT):\n"
      "  --serve-submit    queue this search on the server, print the job id\n"
      "  --serve-status ID / --serve-list   poll job state(s)\n"
      "  --serve-result ID [--serve-wait]   fetch a finished outcome\n"
      "                    [--out FILE]     ...streamed straight to FILE\n"
      "                                     (binary SaveOutcomeBytes form)\n"
      "  --serve-cancel ID                  cooperative cancel\n"
      "  --serve-metrics                    print the server metrics JSON\n"
      "  --serve-list-artifacts             published models + provenance\n"
      "  --serve-fetch-model NAME --out FILE\n"
      "                    stream artifact NAME to FILE (atomic tmp+rename;\n"
      "                    SHA-256-verified, then reloaded via nn/serialize\n"
      "                    as a final integrity check)\n");
}

// Cooperative-shutdown hook: SIGINT/SIGTERM ask the running search to stop
// at its next round (checkpointing first when a checkpointer is attached).
// StopToken::RequestStop is one lock-free atomic store, so it is safe here.
automc::search::StopToken g_stop;

void OnStopSignal(int) { g_stop.RequestStop(); }

automc::core::RunSpec SpecFromCli(const CliOptions& cli) {
  automc::core::RunSpec spec;
  spec.family = cli.family;
  spec.depth = cli.depth;
  spec.dataset = cli.dataset;
  spec.gamma = cli.gamma;
  spec.budget = cli.budget;
  spec.eval_batch = cli.eval_batch;
  spec.searcher = cli.searcher;
  spec.pretrain = cli.pretrain;
  spec.seed = cli.seed;
  return spec;
}

void PrintJobInfo(const automc::server::JobInfo& info) {
  std::printf("job %llu: %s  [%s]",
              static_cast<unsigned long long>(info.id),
              automc::server::JobStateName(info.state), info.summary.c_str());
  if (info.executions >= 0) std::printf("  executions=%d", info.executions);
  if (!info.error.empty()) std::printf("  error: %s", info.error.c_str());
  std::printf("\n");
}

// All --serve-* subcommands; returns the process exit code.
int RunServeClient(const CliOptions& cli) {
  using automc::server::Client;
  std::string path = cli.socket_path;
  if (path.empty()) {
    if (const char* env = std::getenv("AUTOMC_SOCKET"); env && *env) {
      path = env;
    }
  }
  auto client = Client::Connect(path);
  if (!client.ok()) {
    std::fprintf(stderr, "cannot reach server: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }

  if (cli.serve_submit) {
    auto id = client->Submit(SpecFromCli(cli));
    if (!id.ok()) {
      std::fprintf(stderr, "submit failed: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
    std::printf("submitted job %llu\n", static_cast<unsigned long long>(*id));
    return 0;
  }
  if (cli.serve_status_id >= 0) {
    auto info = client->JobStatus(static_cast<uint64_t>(cli.serve_status_id));
    if (!info.ok()) {
      std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
      return 1;
    }
    PrintJobInfo(*info);
    return 0;
  }
  if (cli.serve_cancel_id >= 0) {
    if (automc::Status st =
            client->Cancel(static_cast<uint64_t>(cli.serve_cancel_id));
        !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("cancel requested for job %lld\n", cli.serve_cancel_id);
    return 0;
  }
  if (cli.serve_list) {
    auto jobs = client->ListJobs();
    if (!jobs.ok()) {
      std::fprintf(stderr, "%s\n", jobs.status().ToString().c_str());
      return 1;
    }
    for (const auto& info : *jobs) PrintJobInfo(info);
    return 0;
  }
  if (cli.serve_metrics) {
    auto json = client->Metrics();
    if (!json.ok()) {
      std::fprintf(stderr, "%s\n", json.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", json->c_str());
    return 0;
  }
  if (cli.serve_list_artifacts) {
    auto infos = client->ListArtifacts();
    if (!infos.ok()) {
      std::fprintf(stderr, "%s\n", infos.status().ToString().c_str());
      return 1;
    }
    for (const auto& info : *infos) {
      std::printf("%s: %llu bytes, %u chunks, sha256 %.16s..., job %llu, "
                  "scheme [%s], acc %.1f%%, %lld params\n",
                  info.name.c_str(),
                  static_cast<unsigned long long>(info.total_size),
                  info.chunk_count,
                  automc::HexDigest(info.blob_digest).c_str(),
                  static_cast<unsigned long long>(info.job_id),
                  info.scheme.c_str(), 100.0 * info.acc,
                  static_cast<long long>(info.params));
    }
    if (infos->empty()) std::printf("no artifacts published\n");
    return 0;
  }
  if (!cli.serve_fetch_model.empty()) {
    if (cli.out_path.empty()) {
      std::fprintf(stderr, "--serve-fetch-model needs --out FILE\n");
      return 2;
    }
    auto info = client->FetchModelToFile(cli.serve_fetch_model, cli.out_path);
    if (!info.ok()) {
      std::fprintf(stderr, "fetch failed: %s\n",
                   info.status().ToString().c_str());
      return 1;
    }
    // The stream already passed SHA-256 verification; prove the bytes are a
    // loadable model too, so a corrupt artifact never masquerades as one.
    auto model = automc::nn::LoadModel(cli.out_path);
    if (!model.ok()) {
      std::fprintf(stderr, "fetched model does not deserialize: %s\n",
                   model.status().ToString().c_str());
      std::remove(cli.out_path.c_str());
      return 1;
    }
    std::printf("fetched %s (%llu bytes, job %llu, scheme [%s], acc %.1f%%) "
                "to %s\n",
                info->name.c_str(),
                static_cast<unsigned long long>(info->total_size),
                static_cast<unsigned long long>(info->job_id),
                info->scheme.c_str(), 100.0 * info->acc,
                cli.out_path.c_str());
    return 0;
  }

  // --serve-result [--serve-wait]
  const uint64_t id = static_cast<uint64_t>(cli.serve_result_id);
  for (;;) {
    auto info = client->JobStatus(id);
    if (!info.ok()) {
      std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
      return 1;
    }
    if (automc::server::JobStateIsTerminal(info->state)) {
      if (info->state != automc::server::JobState::kDone) {
        PrintJobInfo(*info);
        return 1;
      }
      break;
    }
    if (!cli.serve_wait) {
      PrintJobInfo(*info);
      return 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (!cli.out_path.empty()) {
    // Stream the raw outcome payload to the file as it arrives — the same
    // atomic tmp+rename sink --serve-fetch-model uses — instead of holding
    // an in-memory copy hostage to the write.
    if (automc::Status st = client->FetchOutcomeToFile(id, cli.out_path);
        !st.ok()) {
      std::fprintf(stderr, "fetch failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("job %llu outcome streamed to %s\n",
                static_cast<unsigned long long>(id), cli.out_path.c_str());
    return 0;
  }
  auto bytes = client->FetchOutcomeBytes(id);
  if (!bytes.ok()) {
    std::fprintf(stderr, "fetch failed: %s\n",
                 bytes.status().ToString().c_str());
    return 1;
  }
  auto outcome = automc::search::LoadOutcomeBytes(*bytes);
  if (!outcome.ok()) {
    std::fprintf(stderr, "bad outcome payload: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }
  if (!cli.outcome_path.empty()) {
    if (automc::Status st =
            automc::search::SaveOutcomeFile(*outcome, cli.outcome_path);
        !st.ok()) {
      std::fprintf(stderr, "outcome save failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("outcome saved to %s\n", cli.outcome_path.c_str());
  }
  std::printf("job %llu: %d executions, %zu pareto points\n",
              static_cast<unsigned long long>(id), outcome->executions,
              outcome->pareto_points.size());
  for (size_t i = 0; i < outcome->pareto_points.size(); ++i) {
    const auto& p = outcome->pareto_points[i];
    std::printf("pareto[%zu]: PR %.1f%% Acc %.1f%%\n", i, 100.0 * p.pr,
                100.0 * p.acc);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace automc;
  // Honors AUTOMC_METRICS_OUT=<path>: write the metrics snapshot at exit.
  std::atexit([] { metrics::MetricsRegistry::Global().DumpIfConfigured(); });
  // A server that vanishes mid-request must surface as a Status, not kill
  // the client with SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) {
    Usage();
    return 2;
  }
  if (cli.serve_mode()) return RunServeClient(cli);

  // Local runs stop cooperatively on Ctrl-C / kill: the search checkpoints
  // (when configured) and the atexit metrics flush still happens.
  std::signal(SIGINT, OnStopSignal);
  std::signal(SIGTERM, OnStopSignal);

  core::RunSpec spec = SpecFromCli(cli);
  if (Status st = core::ValidateRunSpec(spec); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    Usage();
    return 2;
  }

  core::CompressionTask task;
  if (!cli.cifar10_batches.empty()) {
    // Real CIFAR-10 binaries: comma-separated batch files; 90/10 split.
    std::vector<std::string> paths;
    std::string rest = cli.cifar10_batches;
    size_t pos;
    while ((pos = rest.find(',')) != std::string::npos) {
      paths.push_back(rest.substr(0, pos));
      rest = rest.substr(pos + 1);
    }
    if (!rest.empty()) paths.push_back(rest);
    auto ds = data::LoadCifar10(paths);
    if (!ds.ok()) {
      std::fprintf(stderr, "CIFAR-10 load failed: %s\n",
                   ds.status().ToString().c_str());
      return 1;
    }
    Rng split_rng(cli.seed);
    auto [train, test] = ds->Split(0.9, &split_rng);
    task.data.train = std::move(train);
    task.data.test = std::move(test);
    task.model_spec.image_size = 32;
    task.model_spec.base_width = 8;
  } else if (!cli.cifar100_train.empty()) {
    auto ds = data::LoadCifar100(cli.cifar100_train);
    if (!ds.ok()) {
      std::fprintf(stderr, "CIFAR-100 load failed: %s\n",
                   ds.status().ToString().c_str());
      return 1;
    }
    Rng split_rng(cli.seed);
    auto [train, test] = ds->Split(0.9, &split_rng);
    task.data.train = std::move(train);
    task.data.test = std::move(test);
    task.model_spec.image_size = 32;
    task.model_spec.base_width = 8;
  } else {
    // Synthetic datasets (c10/c100/tiny) are fully described by the spec.
    task = core::MakeTask(spec);
  }
  if (!cli.cifar10_batches.empty() || !cli.cifar100_train.empty()) {
    task.model_spec.family = cli.family;
    task.model_spec.depth = cli.depth;
    task.model_spec.num_classes = task.data.train.num_classes;
    task.pretrain_epochs = 4;
    task.base_train_epochs = cli.pretrain;
    task.search_data_fraction = 0.25;
    task.seed = cli.seed;
  }

  std::printf("task: %s-%d on %s, gamma=%.2f, budget=%d, searcher=%s\n",
              cli.family.c_str(), cli.depth, task.data.train.name.c_str(),
              cli.gamma, cli.budget, cli.searcher.c_str());

  search::SearchOutcome outcome;
  std::shared_ptr<nn::Model> base;
  search::SearchSpace space = search::SearchSpace::FullTable1();

  // Persistence: the experience store (crash-safe evaluation log, warm-starts
  // repeat runs) and the checkpointer (kill/resume for long searches).
  std::unique_ptr<store::ExperienceStore> experience_store;
  std::string store_path = cli.store_path;
  if (store_path.empty()) {
    if (const char* env = std::getenv("AUTOMC_STORE"); env && *env) {
      store_path = env;
    }
  }
  if (!store_path.empty()) {
    auto opened = store::ExperienceStore::Open(store_path);
    if (!opened.ok()) {
      std::fprintf(stderr, "cannot open experience store: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    experience_store = std::move(opened).value();
    std::printf("store: %s (%zu records)\n", store_path.c_str(),
                experience_store->size());
  }
  std::unique_ptr<store::SearchCheckpointer> checkpointer;
  const std::string ckpt_dir =
      cli.resume_dir.empty() ? cli.checkpoint_dir : cli.resume_dir;
  if (!ckpt_dir.empty()) {
    store::SearchCheckpointer::Options copts;
    copts.dir = ckpt_dir;
    checkpointer = std::make_unique<store::SearchCheckpointer>(copts);
    if (!cli.resume_dir.empty()) {
      if (Status st = checkpointer->LoadPending(); !st.ok()) {
        std::fprintf(stderr, "resume failed: %s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("resuming from %s\n",
                  checkpointer->checkpoint_path().c_str());
    }
  }

  if (!cli.apply_scheme.empty()) {
    // No search: parse and apply the given scheme directly.
    auto parsed = compress::ParseScheme(cli.apply_scheme);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bad scheme: %s\n",
                   parsed.status().ToString().c_str());
      return 2;
    }
    auto pretrained = core::PretrainModel(task);
    if (!pretrained.ok()) {
      std::fprintf(stderr, "pretraining failed: %s\n",
                   pretrained.status().ToString().c_str());
      return 1;
    }
    std::unique_ptr<nn::Model> model = std::move(pretrained).value();
    compress::CompressionContext ctx;
    ctx.train = &task.data.train;
    ctx.test = &task.data.test;
    ctx.pretrain_epochs = task.pretrain_epochs;
    ctx.batch_size = task.batch_size;
    ctx.lr = task.FinetuneLr();
    ctx.seed = cli.seed + 3;
    for (const auto& spec : *parsed) {
      auto compressor = compress::CreateCompressor(spec);
      if (!compressor.ok()) {
        std::fprintf(stderr, "%s\n", compressor.status().ToString().c_str());
        return 1;
      }
      compress::CompressionStats stats;
      Status st = (*compressor)->Compress(model.get(), ctx, &stats);
      if (!st.ok()) {
        std::fprintf(stderr, "step %s failed: %s\n", spec.ToString().c_str(),
                     st.ToString().c_str());
        return 1;
      }
      std::printf("%s: PR %.1f%%, acc %.1f%% -> %.1f%%\n",
                  spec.ToString().c_str(), 100.0 * stats.ParamReduction(),
                  100.0 * stats.acc_before, 100.0 * stats.acc_after);
    }
    if (cli.print_summary) {
      std::printf("%s", nn::Summarize(model.get()).ToString().c_str());
    }
    if (!cli.save_path.empty()) {
      if (Status st = nn::SaveModel(model.get(), cli.save_path); !st.ok()) {
        std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("saved to %s\n", cli.save_path.c_str());
    }
    return 0;
  }

  core::RunHooks hooks;
  hooks.store = experience_store.get();
  hooks.checkpointer = checkpointer.get();
  hooks.stop = &g_stop;
  auto result = core::RunSearch(spec, task, hooks);
  if (!result.ok()) {
    if (result.status().code() == StatusCode::kCancelled) {
      // Cooperative SIGINT/SIGTERM stop: state is already checkpointed.
      std::printf("search interrupted: %s\n",
                  result.status().message().c_str());
      if (!ckpt_dir.empty()) {
        std::printf("resume with: --resume %s\n", ckpt_dir.c_str());
      }
      return 0;
    }
    std::fprintf(stderr, "search failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  outcome = std::move(result->outcome);
  base = result->base_model;

  if (experience_store != nullptr) {
    std::printf("store: %llu hits, %llu misses, %llu appended\n",
                static_cast<unsigned long long>(experience_store->hits()),
                static_cast<unsigned long long>(experience_store->misses()),
                static_cast<unsigned long long>(experience_store->appends()));
  }
  if (!cli.outcome_path.empty()) {
    if (Status st = search::SaveOutcomeFile(outcome, cli.outcome_path);
        !st.ok()) {
      std::fprintf(stderr, "outcome save failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("outcome saved to %s\n", cli.outcome_path.c_str());
  }

  std::printf("base: %.1f%% accuracy, %lld params\n",
              100.0 * nn::Trainer::Evaluate(base.get(), task.data.test),
              static_cast<long long>(base->ParamCount()));
  int best = -1;
  for (size_t i = 0; i < outcome.pareto_points.size(); ++i) {
    const auto& p = outcome.pareto_points[i];
    std::printf("pareto[%zu]: PR %.1f%% Acc %.1f%%  %s\n", i, 100.0 * p.pr,
                100.0 * p.acc,
                space.SchemeToString(outcome.pareto_schemes[i]).c_str());
    if (best < 0 || p.acc > outcome.pareto_points[static_cast<size_t>(best)].acc) {
      best = static_cast<int>(i);
    }
  }
  if (best < 0) {
    std::printf("no schemes found\n");
    return 0;
  }

  if (!cli.export_model_path.empty()) {
    // The registry's determinism contract: rebuild the winning scheme's
    // model exactly as a server job would (PickWinningScheme +
    // MaterializeScheme on the spec), so these bytes equal the published
    // "job-<id>" artifact for the same spec.
    auto win = core::PickWinningScheme(outcome);
    if (!win.ok()) {
      std::fprintf(stderr, "export failed: %s\n",
                   win.status().ToString().c_str());
      return 1;
    }
    const std::vector<int>& scheme = outcome.pareto_schemes[*win];
    auto model = core::MaterializeScheme(spec, scheme);
    if (!model.ok()) {
      std::fprintf(stderr, "export failed: %s\n",
                   model.status().ToString().c_str());
      return 1;
    }
    if (Status st = nn::SaveModel(model->get(), cli.export_model_path);
        !st.ok()) {
      std::fprintf(stderr, "export save failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("exported winning model (scheme [%s]) to %s\n",
                core::SchemeIndicesToString(scheme).c_str(),
                cli.export_model_path.c_str());
  }

  if (!cli.save_path.empty()) {
    // Re-apply the best scheme on the full data and save the result.
    std::unique_ptr<nn::Model> model = base->Clone();
    compress::CompressionContext ctx;
    ctx.train = &task.data.train;
    ctx.test = &task.data.test;
    ctx.pretrain_epochs = task.pretrain_epochs;
    ctx.batch_size = task.batch_size;
    ctx.lr = task.lr;
    ctx.seed = cli.seed + 9;
    auto point = core::ExecuteScheme(
        space, outcome.pareto_schemes[static_cast<size_t>(best)], model.get(),
        ctx);
    if (!point.ok()) {
      std::fprintf(stderr, "deploy failed: %s\n",
                   point.status().ToString().c_str());
      return 1;
    }
    if (Status st = nn::SaveModel(model.get(), cli.save_path); !st.ok()) {
      std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("saved compressed model (PR %.1f%%, Acc %.1f%%) to %s\n",
                100.0 * point->pr, 100.0 * point->acc, cli.save_path.c_str());
  }
  return 0;
}
