// Search-as-a-service daemon: accepts search jobs over a Unix-domain socket
// and runs them on a bounded pool of job threads, each job with its own
// experience store and checkpoint so results stay bit-identical to a direct
// in-process run of the same RunSpec.
//
//   automc_serve --socket PATH --workdir DIR [--jobs N]
//
// --socket   the listening socket (default: $AUTOMC_SOCKET)
// --workdir  durable job state; a restarted server re-queues every job
//            found QUEUED or RUNNING there and resumes from checkpoints
// --jobs     concurrent job slots (default: $AUTOMC_SERVER_JOBS, else 1)
//
// SIGTERM/SIGINT drain gracefully: in-flight requests get their replies,
// running jobs checkpoint and re-queue durably, the metrics snapshot is
// flushed ($AUTOMC_METRICS_OUT), and the process exits 0. Submit jobs and
// fetch outcomes with the automc_cli --serve-* subcommands.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/server.h"

namespace {

automc::server::Server* g_server = nullptr;

void OnStopSignal(int) {
  // RequestStop is one write(2) to a self-pipe: async-signal-safe.
  if (g_server != nullptr) g_server->RequestStop();
}

void Usage() {
  std::fprintf(stderr,
               "usage: automc_serve --socket PATH --workdir DIR [--jobs N]\n"
               "  --socket PATH   listening socket (default: $AUTOMC_SOCKET)\n"
               "  --workdir DIR   durable job state (spec/checkpoint/outcome "
               "per job)\n"
               "  --jobs N        concurrent job slots (default: "
               "$AUTOMC_SERVER_JOBS, else 1)\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace automc;
  std::signal(SIGPIPE, SIG_IGN);

  server::Server::Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--socket" && (v = next())) {
      opts.socket_path = v;
    } else if (arg == "--workdir" && (v = next())) {
      opts.jobs.workdir = v;
    } else if (arg == "--jobs" && (v = next())) {
      opts.jobs.max_concurrent = std::atoi(v);
    } else {
      if (arg != "--help") {
        std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      }
      Usage();
      return 2;
    }
  }

  auto server = server::Server::Start(std::move(opts));
  if (!server.ok()) {
    std::fprintf(stderr, "automc_serve: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  g_server = server->get();
  std::signal(SIGTERM, OnStopSignal);
  std::signal(SIGINT, OnStopSignal);

  std::printf("automc_serve: listening on %s, %d job slot(s)\n",
              (*server)->socket_path().c_str(),
              (*server)->jobs()->max_concurrent());
  std::fflush(stdout);

  (*server)->Wait();
  g_server = nullptr;
  std::printf("automc_serve: drained, exiting\n");
  return 0;
}
