// Search-as-a-service daemon: accepts search jobs over a Unix-domain socket
// (and optionally TCP) and serves them through a single epoll event loop,
// each job with its own experience store and checkpoint so results stay
// bit-identical to a direct in-process run of the same RunSpec.
//
//   automc_serve --socket PATH --workdir DIR [--jobs N] [--tcp ADDR]
//                [--idle-timeout S] [--experience DIR [--segment NAME]]
//                [--artifacts DIR] [--fleet N]
//
// --socket        the listening unix socket (default: $AUTOMC_SOCKET)
// --tcp ADDR      additional TCP listener, "tcp:HOST:PORT" (port 0 =
//                 kernel-assigned; default: $AUTOMC_TCP, unset = unix only)
// --workdir       durable job state; a restarted server re-queues every job
//                 found QUEUED or RUNNING there and resumes from checkpoints
// --jobs          concurrent job slots per process (default:
//                 $AUTOMC_SERVER_JOBS, else 1)
// --idle-timeout  reap connections idle for S seconds (default:
//                 $AUTOMC_SERVER_IDLE_TIMEOUT, else 0 = never)
// --experience    shared experience tier: a directory of mmap-indexed
//                 evaluation segments that warm-starts every job (default:
//                 $AUTOMC_EXPERIENCE_INDEX; fleet mode defaults it to
//                 <workdir>/experience)
// --fleet N       coordinator mode: shard jobs across N forked worker
//                 processes (N=0 reads $AUTOMC_FLEET_WORKERS, else 2),
//                 each with a private job dir under --workdir
//
// Flags accept both "--flag VALUE" and "--flag=VALUE".
//
// SIGTERM/SIGINT drain gracefully: in-flight requests get their replies,
// running jobs checkpoint and re-queue durably, the metrics snapshot is
// flushed ($AUTOMC_METRICS_OUT), and the process exits 0. Submit jobs and
// fetch outcomes with the automc_cli --serve-* subcommands.
//
// `--worker --control-fd=N` is the internal fleet-worker entry point: the
// coordinator forks+execs this binary with a socketpair control channel; it
// is not meant to be launched by hand.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fleet/coordinator.h"
#include "fleet/worker.h"
#include "server/server.h"

namespace {

automc::server::Server* g_server = nullptr;

void OnStopSignal(int) {
  // RequestStop is one write(2) to an eventfd: async-signal-safe.
  if (g_server != nullptr) g_server->RequestStop();
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: automc_serve --socket PATH --workdir DIR [--jobs N]\n"
      "                    [--tcp tcp:HOST:PORT] [--idle-timeout S]\n"
      "                    [--experience DIR [--segment NAME]] [--fleet N]\n"
      "  --socket PATH     listening unix socket (default: $AUTOMC_SOCKET)\n"
      "  --tcp ADDR        additional TCP listener, tcp:HOST:PORT; port 0 =\n"
      "                    kernel-assigned (default: $AUTOMC_TCP)\n"
      "  --workdir DIR     durable job state (spec/checkpoint/outcome per "
      "job)\n"
      "  --jobs N          concurrent job slots (default: "
      "$AUTOMC_SERVER_JOBS, else 1)\n"
      "  --idle-timeout S  reap idle connections after S seconds (default:\n"
      "                    $AUTOMC_SERVER_IDLE_TIMEOUT, else 0 = never)\n"
      "  --experience DIR  shared experience tier (default: "
      "$AUTOMC_EXPERIENCE_INDEX)\n"
      "  --segment NAME    segment this process appends to (default "
      "seg-0.bin)\n"
      "  --artifacts DIR   model artifact registry (default: "
      "$AUTOMC_ARTIFACT_DIR, else <workdir>/artifacts)\n"
      "  --fleet N         shard jobs across N forked workers (0 = "
      "$AUTOMC_FLEET_WORKERS, else 2)\n");
}

struct ServeArgs {
  automc::server::Server::Options server;
  bool fleet = false;
  int fleet_workers = 0;
  bool worker = false;
  int control_fd = -1;
  bool help = false;
  bool bad = false;
};

ServeArgs ParseArgs(int argc, char** argv) {
  ServeArgs args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string inline_value;
    // The coordinator spawns workers with --flag=value argv; accept that
    // form everywhere alongside the documented "--flag value".
    if (size_t eq = arg.find('='); eq != std::string::npos) {
      inline_value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    }
    auto next = [&]() -> const char* {
      if (!inline_value.empty()) return inline_value.c_str();
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--socket" && (v = next())) {
      args.server.socket_path = v;
    } else if (arg == "--tcp" && (v = next())) {
      args.server.tcp_address = v;
    } else if (arg == "--workdir" && (v = next())) {
      args.server.jobs.workdir = v;
    } else if (arg == "--jobs" && (v = next())) {
      args.server.jobs.max_concurrent = std::atoi(v);
    } else if (arg == "--idle-timeout" && (v = next())) {
      args.server.idle_timeout_s = std::atoi(v);
    } else if (arg == "--experience" && (v = next())) {
      args.server.jobs.shared_dir = v;
    } else if (arg == "--segment" && (v = next())) {
      args.server.jobs.shared_segment = v;
    } else if (arg == "--artifacts" && (v = next())) {
      args.server.jobs.artifact_dir = v;
    } else if (arg == "--fleet" && (v = next())) {
      args.fleet = true;
      args.fleet_workers = std::atoi(v);
    } else if (arg == "--worker") {
      args.worker = true;
    } else if (arg == "--control-fd" && (v = next())) {
      args.control_fd = std::atoi(v);
    } else {
      if (arg != "--help") {
        std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
        args.bad = true;
      }
      args.help = true;
      return args;
    }
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace automc;
  std::signal(SIGPIPE, SIG_IGN);

  ServeArgs args = ParseArgs(argc, argv);
  if (args.help) {
    Usage();
    return args.bad ? 2 : 0;
  }

  if (args.worker) {
    if (args.control_fd < 0) {
      std::fprintf(stderr, "automc_serve: --worker needs --control-fd=N\n");
      return 2;
    }
    return fleet::WorkerMain(args.control_fd, std::move(args.server.jobs));
  }

  std::unique_ptr<fleet::Coordinator> coordinator;
  if (args.fleet) {
    fleet::Coordinator::Options copts;
    copts.num_workers = args.fleet_workers;
    copts.workdir = args.server.jobs.workdir;
    copts.shared_dir = args.server.jobs.shared_dir;
    copts.artifact_dir = args.server.jobs.artifact_dir;
    auto started = fleet::Coordinator::Start(std::move(copts));
    if (!started.ok()) {
      std::fprintf(stderr, "automc_serve: fleet start failed: %s\n",
                   started.status().ToString().c_str());
      return 1;
    }
    coordinator = std::move(*started);
    args.server.handler = coordinator.get();
  }

  auto server = server::Server::Start(std::move(args.server));
  if (!server.ok()) {
    std::fprintf(stderr, "automc_serve: %s\n",
                 server.status().ToString().c_str());
    if (coordinator != nullptr) coordinator->Shutdown();
    return 1;
  }
  g_server = server->get();
  std::signal(SIGTERM, OnStopSignal);
  std::signal(SIGINT, OnStopSignal);

  if (coordinator != nullptr) {
    std::printf("automc_serve: listening on %s%s%s, %d fleet worker(s)\n",
                (*server)->socket_path().c_str(),
                (*server)->tcp_address().empty() ? "" : " and ",
                (*server)->tcp_address().c_str(), coordinator->num_workers());
  } else {
    std::printf("automc_serve: listening on %s%s%s, %d job slot(s)\n",
                (*server)->socket_path().c_str(),
                (*server)->tcp_address().empty() ? "" : " and ",
                (*server)->tcp_address().c_str(),
                (*server)->jobs()->max_concurrent());
  }
  std::fflush(stdout);

  (*server)->Wait();
  g_server = nullptr;
  if (coordinator != nullptr) coordinator->Shutdown();
  std::printf("automc_serve: drained, exiting\n");
  return 0;
}
