// Comparing search strategies on the same task and budget: Random vs
// Evolution vs the RL controller, all through the shared SchemeEvaluator
// (so identical caching and measurement).
//
//   ./build/examples/search_comparison
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/metrics.h"
#include "core/automc.h"
#include "nn/trainer.h"
#include "search/evolutionary.h"
#include "search/random_search.h"
#include "search/rl.h"

int main() {
  using namespace automc;
  // Honors AUTOMC_METRICS_OUT=<path>: write the metrics snapshot at exit.
  std::atexit([] { metrics::MetricsRegistry::Global().DumpIfConfigured(); });

  core::CompressionTask task;
  task.data = data::MakeCifar10Like(3);
  task.model_spec.family = "resnet";
  task.model_spec.depth = 20;
  task.model_spec.num_classes = task.data.train.num_classes;
  task.model_spec.base_width = 4;
  task.pretrain_epochs = 3;
  task.search_data_fraction = 0.25;

  auto base = core::PretrainModel(task);
  if (!base.ok()) {
    std::fprintf(stderr, "%s\n", base.status().ToString().c_str());
    return 1;
  }

  Rng sub_rng(9);
  data::Dataset search_train =
      task.data.train.Subsample(task.search_data_fraction, &sub_rng);
  compress::CompressionContext ctx;
  ctx.train = &search_train;
  ctx.test = &task.data.test;
  ctx.pretrain_epochs = task.pretrain_epochs;
  ctx.batch_size = 32;

  search::SearchSpace space = search::SearchSpace::FullTable1();
  search::SearchConfig config;
  config.max_strategy_executions = 10;
  config.gamma = 0.3;
  config.seed = 5;

  search::RandomSearcher random_searcher;
  search::EvolutionarySearcher evolution;
  search::RlSearcher rl;
  for (search::Searcher* searcher :
       std::initializer_list<search::Searcher*>{&random_searcher, &evolution,
                                                &rl}) {
    // Fresh evaluator per searcher: identical budgets and no shared cache.
    search::SchemeEvaluator evaluator(&space, base->get(), ctx, {});
    auto outcome = searcher->Search(&evaluator, space, config);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", searcher->Name().c_str(),
                   outcome.status().ToString().c_str());
      return 1;
    }
    double best = -1.0;
    for (const auto& p : outcome->pareto_points) best = std::max(best, p.acc);
    std::printf("%-10s executions=%d pareto=%zu best-acc=%.1f%%\n",
                searcher->Name().c_str(), outcome->executions,
                outcome->pareto_schemes.size(), 100.0 * best);
  }
  return 0;
}
