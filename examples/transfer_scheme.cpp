// Transfer study in miniature: search a compression scheme on ResNet-20,
// then apply the same strategy sequence to ResNet-56 (Section 4.4).
//
//   ./build/examples/transfer_scheme
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/metrics.h"
#include "core/automc.h"
#include "nn/trainer.h"

int main() {
  using namespace automc;
  // Honors AUTOMC_METRICS_OUT=<path>: write the metrics snapshot at exit.
  std::atexit([] { metrics::MetricsRegistry::Global().DumpIfConfigured(); });

  core::CompressionTask small_task;
  small_task.data = data::MakeCifar10Like(19);
  small_task.model_spec.family = "resnet";
  small_task.model_spec.depth = 20;
  small_task.model_spec.num_classes = small_task.data.train.num_classes;
  small_task.model_spec.base_width = 4;
  small_task.pretrain_epochs = 3;
  small_task.search_data_fraction = 0.25;

  core::AutoMCOptions options;
  options.search.max_strategy_executions = 10;
  options.search.gamma = 0.3;
  options.embedding.train_epochs = 6;
  options.experience.num_tasks = 1;
  options.experience.strategies_per_task = 6;
  options.seed = 17;

  core::AutoMC automc(options);
  auto result = automc.Run(small_task);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  // Deploy the highest-accuracy Pareto scheme.
  size_t best = 0;
  for (size_t i = 1; i < result->outcome.pareto_points.size(); ++i) {
    if (result->outcome.pareto_points[i].acc >
        result->outcome.pareto_points[best].acc) {
      best = i;
    }
  }
  const std::vector<int>& scheme = result->outcome.pareto_schemes[best];
  std::printf("scheme found on ResNet-20:\n  %s\n",
              result->pareto_descriptions[best].c_str());

  // Apply it to a freshly pretrained ResNet-56 on the same data.
  core::CompressionTask big_task = small_task;
  big_task.model_spec.depth = 56;
  auto big_model = core::PretrainModel(big_task);
  if (!big_model.ok()) {
    std::fprintf(stderr, "%s\n", big_model.status().ToString().c_str());
    return 1;
  }
  std::printf("ResNet-56 before: %.1f%% acc, %lld params\n",
              100.0 * nn::Trainer::Evaluate(big_model->get(),
                                            big_task.data.test),
              static_cast<long long>((*big_model)->ParamCount()));

  compress::CompressionContext ctx;
  ctx.train = &big_task.data.train;
  ctx.test = &big_task.data.test;
  ctx.pretrain_epochs = big_task.pretrain_epochs;
  ctx.batch_size = 32;
  ctx.seed = 23;

  search::SearchSpace space = automc.MakeSearchSpace();
  auto point = core::ExecuteScheme(space, scheme, big_model->get(), ctx);
  if (!point.ok()) {
    std::fprintf(stderr, "%s\n", point.status().ToString().c_str());
    return 1;
  }
  std::printf("ResNet-56 after transfer: %.1f%% acc, PR %.1f%%, FR %.1f%%\n",
              100.0 * point->acc, 100.0 * point->pr, 100.0 * point->fr);
  return 0;
}
