// Quickstart: let AutoMC find Pareto-optimal compression schemes for a small
// CNN on a synthetic image-classification task.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <cstdlib>

#include "common/metrics.h"
#include "core/automc.h"

int main() {
  using namespace automc;

  // Record the run's observability trajectory (counters, timing histograms)
  // when AUTOMC_METRICS_OUT=<path> is set, e.g.
  //   AUTOMC_METRICS_OUT=metrics.json ./build/examples/quickstart
  std::atexit([] { metrics::MetricsRegistry::Global().DumpIfConfigured(); });

  // 1. Define the compression task: model family + dataset + target.
  core::CompressionTask task;
  task.data = data::MakeCifar10Like(/*seed=*/7);
  task.model_spec.family = "resnet";
  task.model_spec.depth = 20;
  task.model_spec.num_classes = task.data.train.num_classes;
  task.model_spec.base_width = 4;
  task.pretrain_epochs = 3;
  task.search_data_fraction = 0.25;

  // 2. Configure AutoMC: search budget, target reduction rate gamma, and
  //    how much domain knowledge to gather up front.
  core::AutoMCOptions options;
  options.search.max_strategy_executions = 12;
  options.search.gamma = 0.3;
  options.embedding.train_epochs = 8;
  options.experience.num_tasks = 1;
  options.experience.strategies_per_task = 8;
  options.seed = 42;

  // 3. Run. AutoMC pretrains the model, learns strategy embeddings from the
  //    knowledge graph + measured experience, and progressively searches.
  core::AutoMC automc(options);
  auto result = automc.Run(task);
  if (!result.ok()) {
    std::fprintf(stderr, "AutoMC failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 4. Inspect the Pareto-optimal schemes.
  std::printf("base model: %.1f%% accuracy, %lld params\n",
              100.0 * result->base_accuracy,
              static_cast<long long>(result->base_model->ParamCount()));
  for (size_t i = 0; i < result->outcome.pareto_schemes.size(); ++i) {
    const auto& p = result->outcome.pareto_points[i];
    std::printf("scheme %zu: PR %.1f%%, Acc %.1f%%\n  %s\n", i, 100.0 * p.pr,
                100.0 * p.acc, result->pareto_descriptions[i].c_str());
  }
  return 0;
}
