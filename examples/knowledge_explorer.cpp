// Exploring the learned domain knowledge: build the knowledge graph over
// the full Table 1 strategy space, train TransR embeddings (Algorithm 1
// without the experience term for speed), then inspect the geometry —
// nearest-neighbor strategies and method centroids.
//
//   ./build/examples/knowledge_explorer
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/metrics.h"
#include "kg/embedding.h"
#include "search/search_space.h"

int main() {
  using namespace automc;
  // Honors AUTOMC_METRICS_OUT=<path>: write the metrics snapshot at exit.
  std::atexit([] { metrics::MetricsRegistry::Global().DumpIfConfigured(); });

  search::SearchSpace space = search::SearchSpace::FullTable1();
  std::printf("search space: %zu strategies\n", space.size());

  kg::EmbeddingLearnerConfig cfg;
  cfg.train_epochs = 15;
  cfg.transr.entity_dim = 32;
  cfg.transr.relation_dim = 32;
  cfg.use_exp = false;  // knowledge-graph-only for this demo
  cfg.seed = 5;
  kg::StrategyEmbeddingLearner learner(space.strategies(), cfg);
  if (Status st = learner.Learn({}); !st.ok()) {
    std::fprintf(stderr, "embedding learning failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }

  auto distance = [&](size_t a, size_t b) {
    const tensor::Tensor& ea = learner.Embedding(a);
    const tensor::Tensor& eb = learner.Embedding(b);
    double d = 0.0;
    for (int64_t i = 0; i < ea.numel(); ++i) {
      d += (ea[i] - eb[i]) * (ea[i] - eb[i]);
    }
    return std::sqrt(d);
  };

  // Nearest neighbors of a reference strategy.
  size_t ref = 0;
  std::vector<std::pair<double, size_t>> neighbors;
  for (size_t i = 1; i < space.size(); ++i) {
    neighbors.push_back({distance(ref, i), i});
  }
  std::partial_sort(neighbors.begin(), neighbors.begin() + 5, neighbors.end());
  std::printf("\nreference strategy:\n  %s\n",
              space.strategy(ref).ToString().c_str());
  std::printf("nearest neighbors in embedding space:\n");
  for (int i = 0; i < 5; ++i) {
    std::printf("  d=%.3f  %s\n", neighbors[static_cast<size_t>(i)].first,
                space.strategy(neighbors[static_cast<size_t>(i)].second)
                    .ToString()
                    .c_str());
  }

  // Method separation: mean within-method vs cross-method distance over a
  // random sample of pairs.
  Rng rng(7);
  double within = 0.0, across = 0.0;
  int wn = 0, an = 0;
  for (int k = 0; k < 3000; ++k) {
    size_t a = static_cast<size_t>(rng.UniformInt(space.size()));
    size_t b = static_cast<size_t>(rng.UniformInt(space.size()));
    if (a == b) continue;
    double d = distance(a, b);
    if (space.strategy(a).method == space.strategy(b).method) {
      within += d;
      ++wn;
    } else {
      across += d;
      ++an;
    }
  }
  std::printf(
      "\nembedding geometry: mean within-method distance %.3f vs "
      "cross-method %.3f\n",
      within / wn, across / an);
  std::printf("(same-method strategies should sit closer together)\n");
  return 0;
}
